//! Transpose-matrix-vector products as spray reductions.

use crate::{Csr, Num};
use ompsim::{Schedule, ThreadPool};
use spray::{
    reduce_strategy, ExecutorPolicy, Kernel, PlanBudget, ReducerView, RegionExecutor, RunReport,
    Strategy,
};

/// The Fig. 10 loop body as a [`spray::Kernel`] over rows:
/// `for k in row(i): y[cols[k]] += vals[k] * x[i]`.
pub struct TmvKernel<'a, T> {
    /// The matrix (iterated row-wise; output is indexed by column).
    pub a: &'a Csr<T>,
    /// Input vector (length `nrows`).
    pub x: &'a [T],
}

impl<T: Num> Kernel<T> for TmvKernel<'_, T> {
    #[inline(always)]
    fn item<V: ReducerView<T>>(&self, view: &mut V, row: usize) {
        let xi = self.x[row];
        let (cols, vals) = self.a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            view.apply(c as usize, v * xi);
        }
    }
}

/// Computes `y += Aᵀ·x` with the given reduction strategy, parallelized
/// over rows with the paper's default static schedule.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn tmv_with_strategy<T: Num>(
    strategy: Strategy,
    pool: &ThreadPool,
    a: &Csr<T>,
    x: &[T],
    y: &mut [T],
) -> RunReport {
    assert_eq!(x.len(), a.nrows(), "x must have nrows elements");
    assert_eq!(y.len(), a.ncols(), "y must have ncols elements");
    let kernel = TmvKernel { a, x };
    reduce_strategy::<T, spray::Sum, _>(
        strategy,
        pool,
        y,
        0..a.nrows(),
        Schedule::default(),
        &kernel,
    )
}

/// Repeated `y += Aᵀ·x` with a cached region plan — spray's answer to
/// MKL's `mkl_sparse_optimize()`: the first product records the column
/// scatter footprint, every later product with the *same matrix* replays
/// it (exclusive blocks write `y` directly, only genuinely shared blocks
/// privatize, the merge visits only dirty copies). Unlike MKL's untimed
/// inspection, the plan-build time is reported in the returned
/// [`RunReport::plan_build_secs`], so amortization claims stay fair.
///
/// Swapping in a matrix with a different sparsity pattern is correct (the
/// deviating product falls back and rebuilds the plan) but wastes the
/// recording; use one `PlannedTmv` per matrix.
pub struct PlannedTmv<T: Num> {
    executor: RegionExecutor<T, spray::Sum>,
}

impl<T: Num> PlannedTmv<T> {
    /// A planned-TMV context for `strategy`, with nothing recorded yet.
    pub fn new(strategy: Strategy) -> Self {
        Self::with_policy(strategy, ExecutorPolicy::Fixed)
    }

    /// A planned-TMV context with an explicit [`ExecutorPolicy`]: under
    /// [`ExecutorPolicy::Adaptive`] repeated products may migrate
    /// strategies (re-recording the plan lazily after each migration).
    pub fn with_policy(strategy: Strategy, policy: ExecutorPolicy) -> Self {
        PlannedTmv {
            executor: RegionExecutor::with_policy(strategy, policy),
        }
    }

    /// Caps the privatized scratch of every later product at `budget`
    /// (see [`PlanBudget`]): the recorded column-scatter plan demotes its
    /// costliest shared blocks to batched striped-lock updates until the
    /// projection fits, and a segmented strategy limits its dense
    /// promotions to its per-thread share. MKL's inspector has no such
    /// knob — its optimize step buys speed with unbounded workspace; here
    /// the time-memory trade is explicit, and each product's
    /// [`RunReport::scratch_bytes`] shows what the cap bought. Takes
    /// effect on the next recording; pair with a fresh `PlannedTmv` (or a
    /// deviating matrix) to re-record under a tighter cap.
    pub fn set_budget(&mut self, budget: PlanBudget) {
        self.executor.set_budget(budget);
    }

    /// Computes `y += Aᵀ·x`, replaying (or first recording) the plan.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn run(&mut self, pool: &ThreadPool, a: &Csr<T>, x: &[T], y: &mut [T]) -> RunReport {
        assert_eq!(x.len(), a.nrows(), "x must have nrows elements");
        assert_eq!(y.len(), a.ncols(), "y must have ncols elements");
        let kernel = TmvKernel { a, x };
        self.executor
            .run_planned(0, pool, y, 0..a.nrows(), Schedule::default(), &kernel)
    }

    /// Cumulative seconds spent building plans (the inspection cost).
    pub fn plan_build_secs(&self) -> f64 {
        self.executor.plan_build_secs()
    }

    /// Products so far that replayed a plan without deviating.
    pub fn planned_regions(&self) -> u64 {
        self.executor.planned_regions()
    }

    /// Strategy migrations performed so far (0 under a fixed policy).
    pub fn migrations(&self) -> u64 {
        self.executor.migrations()
    }
}

/// Computes `y += Aᵀ·x` by submitting the product as a job to a shared
/// [`spray_service::ReductionService`] — the service analog of
/// [`PlannedTmv`]: the first product with a given `class` records a
/// region plan in the service's shared cache and every later product of
/// the same class (from this caller *or any other thread* using the
/// same service) replays it; same-shape products queued concurrently
/// may batch into a single region.
///
/// `class` identifies the matrix's sparsity pattern — use one value per
/// matrix, exactly like "one [`PlannedTmv`] per matrix" (a collision is
/// correct but re-records the plan). The job is also queued under
/// `class` as its fair-share tenant.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn tmv_via_service<T: Num>(
    svc: &spray_service::ReductionService<T, spray::Sum>,
    class: u64,
    a: &Csr<T>,
    x: &[T],
    y: &mut Vec<T>,
) -> RunReport {
    assert_eq!(x.len(), a.nrows(), "x must have nrows elements");
    assert_eq!(y.len(), a.ncols(), "y must have ncols elements");
    let job = spray_service::Job {
        tenant: class,
        class,
        out: std::mem::take(y),
        iters: a.nrows(),
        body: Box::new(move |view, row| {
            let xi = x[row];
            let (cols, vals) = a.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                view.apply(c as usize, v * xi);
            }
        }),
    };
    let result = svc
        .run_scoped(vec![job])
        .pop()
        .expect("one job in, one out");
    *y = result.out;
    result.report
}

/// Disjoint-write shared output used by the row-parallel gather.
struct RowOut<T>(*mut T);
// SAFETY: each row index is written by exactly one schedule chunk.
unsafe impl<T: Send> Send for RowOut<T> {}
unsafe impl<T: Send> Sync for RowOut<T> {}

impl<T> RowOut<T> {
    /// # Safety
    /// `i` in bounds and written by exactly one thread.
    #[inline(always)]
    unsafe fn add_to(&self, i: usize, v: T)
    where
        T: Num,
    {
        let p = self.0.add(i);
        *p = *p + v;
    }
}

/// Parallel `y += A·x` (row gather, DOALL — each `y[r]` written by one
/// thread). Used by the inspector/executor baseline after transposition,
/// and useful on its own.
pub fn par_matvec<T: Num>(pool: &ThreadPool, a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols(), "x must have ncols elements");
    assert_eq!(y.len(), a.nrows(), "y must have nrows elements");
    let out = RowOut(y.as_mut_ptr());
    pool.for_each(0..a.nrows(), Schedule::default(), |r| {
        let (cols, vals) = a.row(r);
        let mut acc = T::default();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = acc + v * x[c as usize];
        }
        // SAFETY: row r belongs to exactly one schedule chunk.
        unsafe { out.add_to(r, acc) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn tmv_all_strategies_match_seq() {
        let a = gen::random(200, 150, 2000, 42);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut expected = vec![0.0f64; 150];
        a.tmatvec_seq(&x, &mut expected);

        let pool = ThreadPool::new(4);
        for strategy in Strategy::all(32) {
            let mut y = vec![0.0f64; 150];
            let report = tmv_with_strategy(strategy, &pool, &a, &x, &mut y);
            for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "{} differs at {i}: {got} vs {want}",
                    report.strategy
                );
            }
        }
    }

    #[test]
    fn sharded_tmv_matches_seq_and_reports_topology() {
        // Consumer-port passthrough: on an emulated NUMA topology the
        // product stays numerically indistinguishable from the flat run
        // and the returned report carries the node-shard telemetry.
        let a = gen::random(200, 150, 2000, 7);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut expected = vec![0.0f64; 150];
        a.tmatvec_seq(&x, &mut expected);

        let pool = ThreadPool::with_topology(4, ompsim::Topology::new(2, 2));
        for strategy in [
            Strategy::Keeper,
            Strategy::Atomic,
            Strategy::BlockPrivate { block_size: 32 },
        ] {
            let mut y = vec![0.0f64; 150];
            let report = tmv_with_strategy(strategy, &pool, &a, &x, &mut y);
            assert_eq!(report.node_shards, 2, "{}", report.strategy);
            for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "{} differs at {i} on 2x2: {got} vs {want}",
                    report.strategy
                );
            }
        }
    }

    #[test]
    fn planned_tmv_matches_seq_and_replays() {
        let a = gen::random(400, 256, 4000, 9);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).cos()).collect();
        let mut expected = vec![0.0f64; 256];
        a.tmatvec_seq(&x, &mut expected);

        let pool = ThreadPool::new(4);
        let mut tmv = PlannedTmv::new(Strategy::BlockCas { block_size: 32 });
        // Several products with the same matrix: the first records, the
        // rest replay; all must match the sequential reference.
        for rep in 0..3 {
            let mut y = vec![0.0f64; 256];
            let report = tmv.run(&pool, &a, &x, &mut y);
            for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "rep {rep} differs at {i}: {got} vs {want}"
                );
            }
            assert_eq!(report.planned_regions, rep as u64);
        }
        assert_eq!(tmv.planned_regions(), 2);
        assert!(tmv.plan_build_secs() >= 0.0);
    }

    #[test]
    fn adaptive_planned_tmv_matches_seq() {
        let a = gen::random(400, 256, 4000, 9);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).cos()).collect();
        let mut expected = vec![0.0f64; 256];
        a.tmatvec_seq(&x, &mut expected);

        let pool = ThreadPool::new(4);
        let mut tmv = PlannedTmv::with_policy(
            Strategy::BlockCas { block_size: 32 },
            ExecutorPolicy::Adaptive(spray::AdaptiveConfig::default()),
        );
        for rep in 0..4 {
            let mut y = vec![0.0f64; 256];
            tmv.run(&pool, &a, &x, &mut y);
            for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "rep {rep} differs at {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn budgeted_and_segmented_planned_tmv_match_seq() {
        let a = gen::random(400, 256, 4000, 9);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).cos()).collect();
        let mut expected = vec![0.0f64; 256];
        a.tmatvec_seq(&x, &mut expected);

        let pool = ThreadPool::new(4);
        // Budget ladder on the block plan (zero demotes every shared
        // block) plus the segmented strategy with and without promotion
        // headroom: all must match the sequential product on replays too.
        let configs = [
            (Strategy::BlockCas { block_size: 32 }, PlanBudget::new(0)),
            (Strategy::BlockCas { block_size: 32 }, PlanBudget::new(2048)),
            (
                Strategy::Segmented {
                    bucket_bits: Strategy::bucket_bits_for(32),
                },
                PlanBudget::UNLIMITED,
            ),
            (
                Strategy::Segmented {
                    bucket_bits: Strategy::bucket_bits_for(32),
                },
                PlanBudget::new(0),
            ),
        ];
        for (strategy, budget) in configs {
            let mut tmv = PlannedTmv::new(strategy);
            tmv.set_budget(budget);
            for rep in 0..3 {
                let mut y = vec![0.0f64; 256];
                let report = tmv.run(&pool, &a, &x, &mut y);
                for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-9,
                        "{} budget {budget:?} rep {rep} differs at {i}: {got} vs {want}",
                        strategy.label()
                    );
                }
                if !budget.is_unlimited() {
                    assert_eq!(report.budget_bytes, budget.max_scratch_bytes);
                }
            }
        }
    }

    #[test]
    fn tmv_via_service_matches_seq_and_replays() {
        let a = gen::random(400, 256, 4000, 9);
        let b = gen::random(300, 256, 2500, 11);
        let x_a: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).cos()).collect();
        let x_b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut want_a = vec![0.0f64; 256];
        let mut want_b = vec![0.0f64; 256];
        a.tmatvec_seq(&x_a, &mut want_a);
        b.tmatvec_seq(&x_b, &mut want_b);

        // Two matrices multiplex one service under distinct classes.
        let svc =
            spray_service::ReductionService::<f64, spray::Sum>::new(spray_service::ServiceConfig {
                threads: 4,
                strategy: Strategy::BlockCas { block_size: 32 },
                ..spray_service::ServiceConfig::default()
            });
        let mut last = None;
        for rep in 0..3 {
            for (class, m, x, want) in [(1u64, &a, &x_a, &want_a), (2, &b, &x_b, &want_b)] {
                let mut y = vec![0.0f64; 256];
                let report = tmv_via_service(&svc, class, m, x, &mut y);
                for (i, (&got, &want)) in y.iter().zip(want).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-9,
                        "class {class} rep {rep} differs at {i}: {got} vs {want}"
                    );
                }
                last = Some(report);
            }
        }
        // Both classes replay their own plan after the first product:
        // 4 of the 6 products are clean replays.
        assert_eq!(last.unwrap().planned_regions, 4);
        assert_eq!(svc.shared().jobs(), 6);
    }

    #[test]
    fn par_matvec_matches_seq() {
        let a = gen::random(300, 200, 3000, 7);
        let x: Vec<f64> = (0..200).map(|i| (i % 11) as f64).collect();
        let mut seq = vec![0.0f64; 300];
        a.matvec_seq(&x, &mut seq);
        let pool = ThreadPool::new(4);
        let mut par = vec![0.0f64; 300];
        par_matvec(&pool, &a, &x, &mut par);
        for (u, v) in seq.iter().zip(&par) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "x must have nrows")]
    fn dimension_mismatch_panics() {
        let a = gen::random(10, 10, 20, 1);
        let pool = ThreadPool::new(1);
        let mut y = vec![0.0f64; 10];
        let _ = tmv_with_strategy(Strategy::Atomic, &pool, &a, &[1.0; 5], &mut y);
    }
}
