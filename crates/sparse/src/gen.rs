//! Synthetic matrix generators.
//!
//! The paper evaluates on two downloaded matrices we substitute with
//! structure-preserving generators (see DESIGN.md §2):
//!
//! * **s3dkt3m2** (Matrix Market): 90,449 rows, ≈1.92 M nonzeros, narrow
//!   bandwidth ("almost diagonal", result vector cache-resident) →
//!   [`s3dkt3m2_like`] builds a symmetric banded matrix with those
//!   dimensions.
//! * **debr** (UF collection): a de Bruijn graph, 1,048,576 nodes,
//!   ≈4.2 M nonzeros, global bandwidth (cache-busting) → [`debr_like`]
//!   builds the *actual* de Bruijn adjacency structure (node `i` connects
//!   to `2i mod n` and `2i+1 mod n`), symmetrized, exactly as the original.

use crate::Csr;

/// Deterministic splitmix64 generator standing in for `rand::StdRng`
/// (the workspace builds offline, with no registry dependencies). Keeps
/// the `seed_from_u64`/`gen_range` call shape so generator code reads
/// like the rand idiom; streams are stable across runs for a given seed.
struct StdRng {
    state: u64,
}

impl StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }
}

/// Ranges [`StdRng::gen_range`] can draw from.
trait SampleRange {
    type Out;
    fn sample(self, rng: &mut StdRng) -> Self::Out;
}

impl SampleRange for std::ops::Range<usize> {
    type Out = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Out = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.gen_range(*self.start()..self.end() + 1)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.gen()
    }
}

/// Uniform random matrix with `nnz` entries (before duplicate merging),
/// values in `(0, 1]`, deterministic in `seed`.
pub fn random(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let triplets = (0..nnz).map(|_| {
        (
            rng.gen_range(0..nrows),
            rng.gen_range(0..ncols),
            rng.gen_range(0.0..1.0) + 1e-9,
        )
    });
    Csr::from_triplets(nrows, ncols, triplets.collect::<Vec<_>>())
}

/// Symmetric banded matrix: row `i` has entries at `i` and at
/// `entries_per_side` offsets within `half_bandwidth`, mirrored to keep
/// the matrix symmetric. Deterministic in `seed`.
pub fn banded(n: usize, half_bandwidth: usize, entries_per_side: usize, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(n * (2 * entries_per_side + 1));
    for i in 0..n {
        triplets.push((i, i, 2.0 + rng.gen_range(0.0..1.0)));
        for _ in 0..entries_per_side {
            let off = rng.gen_range(1..=half_bandwidth.max(1));
            if i + off < n {
                let v = rng.gen_range(-1.0..1.0);
                triplets.push((i, i + off, v));
                triplets.push((i + off, i, v));
            }
        }
    }
    Csr::from_triplets(n, n, triplets)
}

/// A banded matrix with s3dkt3m2's shape: 90,449 rows, ≈1.9 M nonzeros,
/// narrow band. ≈7 MB of CSR data — small enough to keep the result vector
/// (and with dense reduction, its replicas) cache-resident, which is what
/// drives that matrix's behavior in Fig. 14.
pub fn s3dkt3m2_like() -> Csr<f64> {
    // 90,449 rows × (1 diagonal + ~2×10 off-diagonal) ≈ 1.9M nnz,
    // half-bandwidth 300 (narrow relative to 90k).
    banded(90_449, 300, 10, 0x53d3)
}

/// Scaled-down variant of [`s3dkt3m2_like`] for quick runs/tests.
pub fn s3dkt3m2_small(n: usize) -> Csr<f64> {
    banded(n, 300.min(n / 4 + 1), 10, 0x53d3)
}

/// De Bruijn graph adjacency matrix on `2^order` nodes, symmetrized:
/// the structure of the debr matrix (node `i` → `2i`, `2i+1` mod `n`).
/// Edge weights are 1; diagonal entries appear where `2i ≡ i`.
pub fn de_bruijn(order: u32) -> Csr<f64> {
    let n = 1usize << order;
    let mut triplets = Vec::with_capacity(4 * n);
    for i in 0..n {
        for &j in &[(2 * i) % n, (2 * i + 1) % n] {
            triplets.push((i, j, 1.0));
            if j != i {
                triplets.push((j, i, 1.0));
            }
        }
    }
    Csr::from_triplets(n, n, triplets)
}

/// The debr stand-in at full size: 2²⁰ = 1,048,576 nodes, ≈4.2 M nonzeros,
/// global bandwidth (successor `2i mod n` is far from `i` for most `i`).
pub fn debr_like() -> Csr<f64> {
    de_bruijn(20)
}

/// R-MAT (recursive-matrix) graph generator on `2^scale` vertices with
/// `edge_factor · n` directed edges — the Kronecker-style generator the
/// GAP benchmark suite (the paper's PageRank reference \[11\]) uses for
/// synthetic power-law graphs. Standard Graph500 probabilities
/// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05); deterministic in `seed`.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Csr<f64> {
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(edge_factor * n);
    for _ in 0..edge_factor * n {
        let (mut r, mut c) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < A {
                (0, 0)
            } else if p < A + B {
                (0, 1)
            } else if p < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << bit;
            c |= dc << bit;
        }
        triplets.push((r, c, 1.0));
    }
    Csr::from_triplets(n, n, triplets)
}

/// 5-point finite-difference Laplacian on an `nx × ny` grid (row-major
/// vertex numbering): the classic PDE matrix, banded with bandwidth `nx`.
pub fn grid_laplacian_2d(nx: usize, ny: usize) -> Csr<f64> {
    let n = nx * ny;
    let mut triplets = Vec::with_capacity(5 * n);
    for j in 0..ny {
        for i in 0..nx {
            let v = j * nx + i;
            triplets.push((v, v, 4.0));
            if i > 0 {
                triplets.push((v, v - 1, -1.0));
            }
            if i + 1 < nx {
                triplets.push((v, v + 1, -1.0));
            }
            if j > 0 {
                triplets.push((v, v - nx, -1.0));
            }
            if j + 1 < ny {
                triplets.push((v, v + nx, -1.0));
            }
        }
    }
    Csr::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        let a = random(50, 50, 200, 9);
        let b = random(50, 50, 200, 9);
        assert_eq!(a, b);
        let c = random(50, 50, 200, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn banded_is_symmetric_and_banded() {
        let n = 200;
        let bw = 8;
        let a = banded(n, bw, 3, 1);
        let d = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                assert!(
                    (d[r][c] - d[c][r]).abs() < 1e-12,
                    "not symmetric at {r},{c}"
                );
                if d[r][c] != 0.0 {
                    assert!(r.abs_diff(c) <= bw, "entry outside band at {r},{c}");
                }
            }
        }
        // Diagonal fully populated.
        for r in 0..n {
            assert!(d[r][r] > 0.0);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn de_bruijn_structure() {
        let a = de_bruijn(6); // 64 nodes
        let n = 64;
        assert_eq!(a.nrows(), n);
        let d = a.to_dense();
        // Symmetric.
        for r in 0..n {
            for c in 0..n {
                assert_eq!(d[r][c] != 0.0, d[c][r] != 0.0);
            }
        }
        // Every node has its two successors.
        for i in 0..n {
            assert!(d[i][(2 * i) % n] != 0.0);
            assert!(d[i][(2 * i + 1) % n] != 0.0);
        }
    }

    #[test]
    fn de_bruijn_nnz_about_4n() {
        let a = de_bruijn(10);
        let n = 1 << 10;
        // Symmetrized out+in degree ≈ 4 per node, minus merged duplicates.
        assert!(a.nnz() > 3 * n && a.nnz() <= 4 * n, "nnz = {}", a.nnz());
    }

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let a = rmat(10, 8, 42);
        let b = rmat(10, 8, 42);
        assert_eq!(a, b);
        let n = 1 << 10;
        assert_eq!(a.nrows(), n);
        // Power-law skew: the max out-degree far exceeds the mean.
        let mean = a.nnz() as f64 / n as f64;
        let max_deg = (0..n)
            .map(|r| a.rowptr()[r + 1] - a.rowptr()[r])
            .max()
            .unwrap();
        assert!(
            max_deg as f64 > 4.0 * mean,
            "max degree {max_deg} vs mean {mean}"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn laplacian_rows_sum_to_boundary_defect() {
        let a = grid_laplacian_2d(5, 4);
        assert_eq!(a.nrows(), 20);
        let d = a.to_dense();
        // Interior rows sum to 0; boundary rows to the number of missing
        // neighbors.
        let interior = 5 + 2; // (i=2, j=1)
        assert_eq!(d[interior].iter().sum::<f64>(), 0.0);
        assert_eq!(d[0].iter().sum::<f64>(), 2.0); // corner: 2 missing
                                                   // Symmetry.
        for r in 0..20 {
            for c in 0..20 {
                assert_eq!(d[r][c], d[c][r]);
            }
        }
    }

    #[test]
    fn s3dkt3m2_small_has_expected_density() {
        let a = s3dkt3m2_small(1000);
        // ~21 nnz per row.
        assert!(
            a.nnz() > 15 * 1000 && a.nnz() < 25 * 1000,
            "nnz = {}",
            a.nnz()
        );
    }
}
