//! Simulated Intel-MKL sparse BLAS baselines.
//!
//! The paper compares against two proprietary MKL entry points for the
//! transpose product (§VI-B); we cannot link MKL, so each is replaced by an
//! open implementation engineered to preserve the *behavioral shape* the
//! paper reports (see DESIGN.md, substitution 2):
//!
//! * [`legacy_tmv`] ≈ `mkl_cspblas_scsrgemv('T', …)`: a one-call routine
//!   that parallelizes over rows and serializes conflicting output updates
//!   with striped locks. Fine at low thread counts, collapses under
//!   contention — the paper measures it peaking at 4 threads.
//! * [`MklSim`] ≈ the `mkl_sparse_s_mv` inspector/executor flow:
//!   - *without hints*, `optimize()` only computes a row blocking and the
//!     executor still scatters with atomics — better than legacy, peaks
//!     early (8 threads in the paper);
//!   - *with hints* (`set_transpose_hint` + `optimize()`), the inspector
//!     materializes the full transpose so the executor is a conflict-free
//!     row gather — fastest executor in the paper, but the inspection
//!     work is excluded from timing ("unfair advantage", Fig. 14) and its
//!     memory (a whole second matrix) dominates every other approach.

use crate::{par_matvec, Csr, Num};
use ompsim::{Schedule, ThreadPool};
use std::sync::Mutex;

/// Number of lock stripes guarding the legacy routine's output vector.
const LEGACY_STRIPES: usize = 1024;

/// Simulated legacy one-call transpose SpMV: `y += Aᵀ·x`, row-parallel,
/// output integrity via striped locks (one lock per
/// `ncols / LEGACY_STRIPES` output elements, acquired per update).
pub fn legacy_tmv<T: Num>(pool: &ThreadPool, a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows());
    assert_eq!(y.len(), a.ncols());
    let stripes: Vec<Mutex<()>> = (0..LEGACY_STRIPES.min(a.ncols().max(1)))
        .map(|_| Mutex::new(()))
        .collect();
    let nstripes = stripes.len();
    let out = SharedOut(y.as_mut_ptr(), y.len());
    pool.for_each(0..a.nrows(), Schedule::default(), |r| {
        let xi = x[r];
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let c = c as usize;
            let _g = stripes[c % nstripes].lock().unwrap();
            // SAFETY: all writers to y[c] hold stripe lock c % nstripes.
            unsafe { out.add_to(c, v * xi) };
        }
    });
}

struct SharedOut<T>(*mut T, usize);
// SAFETY: writes are serialized by stripe locks (legacy) or atomics (I/E).
unsafe impl<T: Send> Send for SharedOut<T> {}
unsafe impl<T: Send> Sync for SharedOut<T> {}

impl<T: Num> SharedOut<T> {
    /// # Safety
    /// Caller serializes concurrent writers to index `i`.
    #[inline(always)]
    unsafe fn add_to(&self, i: usize, v: T) {
        debug_assert!(i < self.1);
        let p = self.0.add(i);
        *p = *p + v;
    }

    /// # Safety
    /// All concurrent accesses to index `i` are atomic.
    #[inline(always)]
    unsafe fn add_atomic(&self, i: usize, v: T) {
        debug_assert!(i < self.1);
        T::atomic_combine::<spray::Sum>(self.0.add(i), v);
    }
}

/// Operation hint, mirroring `mkl_sparse_set_mv_hint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Hint {
    /// No information given to the inspector.
    #[default]
    None,
    /// The handle will be used for many transpose products.
    TransposeMany,
}

/// Simulated inspector/executor handle (≈ `sparse_matrix_t` +
/// `mkl_sparse_optimize`).
pub struct MklSim<'a, T> {
    a: &'a Csr<T>,
    hint: Hint,
    /// Materialized transpose (hint path only).
    optimized: Option<Csr<T>>,
    /// Row blocking for the no-hint executor (block starts).
    row_blocks: Option<Vec<usize>>,
}

impl<'a, T: Num> MklSim<'a, T> {
    /// Creates an unoptimized handle around `a`.
    pub fn new(a: &'a Csr<T>) -> Self {
        MklSim {
            a,
            hint: Hint::None,
            optimized: None,
            row_blocks: None,
        }
    }

    /// Declares the expected usage before [`MklSim::optimize`].
    pub fn set_hint(&mut self, hint: Hint) {
        self.hint = hint;
    }

    /// Runs the inspector. With [`Hint::TransposeMany`] this builds the
    /// full transpose (expensive in time *and* memory — both effects the
    /// paper highlights); without a hint it only computes an
    /// nnz-balanced row blocking.
    pub fn optimize(&mut self, nthreads: usize) {
        match self.hint {
            Hint::TransposeMany => {
                self.optimized = Some(self.a.transpose());
            }
            Hint::None => {
                // Split rows into nthreads blocks of roughly equal nnz.
                let total = self.a.nnz();
                let per = total.div_ceil(nthreads.max(1));
                let rowptr = self.a.rowptr();
                let mut blocks = vec![0usize];
                let mut next_target = per;
                for r in 0..self.a.nrows() {
                    if rowptr[r + 1] >= next_target && blocks.len() < nthreads {
                        blocks.push(r + 1);
                        next_target += per;
                    }
                }
                blocks.push(self.a.nrows());
                self.row_blocks = Some(blocks);
            }
        }
    }

    /// Whether the inspector materialized a transpose.
    pub fn is_hint_optimized(&self) -> bool {
        self.optimized.is_some()
    }

    /// Extra heap bytes held by the optimized representation — the memory
    /// the paper's Fig. 14/15 (right) shows dwarfing everything else.
    pub fn optimization_bytes(&self) -> usize {
        self.optimized.as_ref().map_or(0, |t| t.heap_bytes())
            + self
                .row_blocks
                .as_ref()
                .map_or(0, |b| b.capacity() * std::mem::size_of::<usize>())
    }

    /// Executor: `y += Aᵀ·x`.
    ///
    /// * hint path: conflict-free row gather on the materialized transpose;
    /// * no-hint path: atomic scatter over inspector-balanced row blocks;
    /// * unoptimized handle: atomic scatter with the default schedule.
    pub fn tmv(&self, pool: &ThreadPool, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.a.nrows());
        assert_eq!(y.len(), self.a.ncols());
        if let Some(t) = &self.optimized {
            par_matvec(pool, t, x, y);
            return;
        }
        let out = SharedOut(y.as_mut_ptr(), y.len());
        let scatter = |r: usize| {
            let xi = x[r];
            let (cols, vals) = self.a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                // SAFETY: all loop-phase accesses to y are atomic.
                unsafe { out.add_atomic(c as usize, v * xi) };
            }
        };
        if let Some(blocks) = &self.row_blocks {
            pool.parallel(|team| {
                // Deal inspector blocks round-robin so correctness holds
                // even if the pool width differs from the optimize() width.
                let nb = blocks.len() - 1;
                let mut b = team.id();
                while b < nb {
                    for r in blocks[b]..blocks[b + 1] {
                        scatter(r);
                    }
                    b += team.num_threads();
                }
            });
        } else {
            pool.for_each(0..self.a.nrows(), Schedule::default(), scatter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn expected(a: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.ncols()];
        a.tmatvec_seq(x, &mut y);
        y
    }

    fn assert_close(got: &[f64], want: &[f64], label: &str) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-9, "{label} differs at {i}: {g} vs {w}");
        }
    }

    #[test]
    fn legacy_matches_seq() {
        let a = gen::random(300, 250, 4000, 11);
        let x: Vec<f64> = (0..300).map(|i| (i % 7) as f64 * 0.25).collect();
        let want = expected(&a, &x);
        let pool = ThreadPool::new(4);
        let mut y = vec![0.0; 250];
        legacy_tmv(&pool, &a, &x, &mut y);
        assert_close(&y, &want, "legacy");
    }

    #[test]
    fn ie_no_hint_matches_seq() {
        let a = gen::random(300, 250, 4000, 12);
        let x: Vec<f64> = (0..300).map(|i| (i % 5) as f64).collect();
        let want = expected(&a, &x);
        let pool = ThreadPool::new(4);
        let mut h = MklSim::new(&a);
        h.optimize(4);
        assert!(!h.is_hint_optimized());
        let mut y = vec![0.0; 250];
        h.tmv(&pool, &x, &mut y);
        assert_close(&y, &want, "ie-nohint");
    }

    #[test]
    fn ie_hint_matches_seq_and_costs_memory() {
        let a = gen::random(300, 250, 4000, 13);
        let x: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 0.5).collect();
        let want = expected(&a, &x);
        let pool = ThreadPool::new(4);
        let mut h = MklSim::new(&a);
        h.set_hint(Hint::TransposeMany);
        h.optimize(4);
        assert!(h.is_hint_optimized());
        // The optimized representation is a whole second matrix.
        assert!(h.optimization_bytes() >= a.heap_bytes() / 2);
        let mut y = vec![0.0; 250];
        h.tmv(&pool, &x, &mut y);
        assert_close(&y, &want, "ie-hint");
    }

    #[test]
    fn unoptimized_handle_still_correct() {
        let a = gen::random(100, 100, 500, 14);
        let x = vec![1.0; 100];
        let want = expected(&a, &x);
        let pool = ThreadPool::new(2);
        let h = MklSim::new(&a);
        let mut y = vec![0.0; 100];
        h.tmv(&pool, &x, &mut y);
        assert_close(&y, &want, "unoptimized");
    }

    #[test]
    fn row_blocks_cover_all_rows() {
        let a = gen::random(1000, 50, 5000, 15);
        let mut h = MklSim::new(&a);
        h.optimize(7);
        let blocks = h.row_blocks.as_ref().unwrap();
        assert_eq!(blocks[0], 0);
        assert_eq!(*blocks.last().unwrap(), 1000);
        assert!(blocks.windows(2).all(|w| w[0] <= w[1]));
        assert!(blocks.len() <= 8 + 1);
    }
}
