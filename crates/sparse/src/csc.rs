//! Compressed sparse column (CSC) matrices.
//!
//! §VI-B: "these formats" — CSR and CSC — are both standard, and a
//! *matrix-vector product on a CSC matrix* contains exactly the same
//! data-dependent scatter as the transpose product on CSR (Fig. 10). This
//! type makes that duality concrete: `Csc` stores columns contiguously,
//! its `matvec` is a spray reduction over columns, and conversions to/from
//! [`Csr`] are exact.

use crate::{Csr, Num};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Kernel, ReducerView, RunReport, Strategy};
use std::fmt;

/// A CSC sparse matrix: `rows[colptr[j]..colptr[j+1]]` are the row indices
/// of column `j`'s entries.
#[derive(Clone, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rows: Vec<u32>,
    vals: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Csc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csc({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.vals.len()
        )
    }
}

impl<T: Num> Csc<T> {
    /// Converts from CSR (exact; `O(nnz)`).
    pub fn from_csr(a: &Csr<T>) -> Self {
        // The transpose of a CSR matrix, read with rows/cols swapped, IS
        // the CSC form of the original.
        let t = a.transpose();
        Csc {
            nrows: a.nrows(),
            ncols: a.ncols(),
            colptr: t.rowptr().to_vec(),
            rows: t.cols().to_vec(),
            vals: t.vals().to_vec(),
        }
    }

    /// Converts to CSR (exact; `O(nnz)`).
    pub fn to_csr(&self) -> Csr<T> {
        // CSC arrays read as CSR describe the transpose; transpose again.
        Csr::from_raw(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rows.clone(),
            self.vals.clone(),
        )
        .transpose()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The `(row-indices, values)` slices of one column.
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rows[lo..hi], &self.vals[lo..hi])
    }

    /// Sequential `y += A·x` — on CSC this is the Fig. 10 scatter: column
    /// `j` scatters `vals[k]·x[j]` to `y[rows[k]]`.
    pub fn matvec_seq(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (j, &xj) in x.iter().enumerate() {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r as usize] = y[r as usize] + v * xj;
            }
        }
    }
}

/// The CSC matvec scatter as a [`spray::Kernel`] over columns.
pub struct CscMvKernel<'a, T> {
    /// The matrix.
    pub a: &'a Csc<T>,
    /// Input vector (length `ncols`).
    pub x: &'a [T],
}

impl<T: Num> Kernel<T> for CscMvKernel<'_, T> {
    #[inline(always)]
    fn item<V: ReducerView<T>>(&self, view: &mut V, j: usize) {
        let xj = self.x[j];
        let (rows, vals) = self.a.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            view.apply(r as usize, v * xj);
        }
    }
}

/// Computes `y += A·x` on a CSC matrix with the given reduction strategy.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn csc_matvec_with_strategy<T: Num>(
    strategy: Strategy,
    pool: &ThreadPool,
    a: &Csc<T>,
    x: &[T],
    y: &mut [T],
) -> RunReport {
    assert_eq!(x.len(), a.ncols(), "x must have ncols elements");
    assert_eq!(y.len(), a.nrows(), "y must have nrows elements");
    let kernel = CscMvKernel { a, x };
    reduce_strategy::<T, spray::Sum, _>(
        strategy,
        pool,
        y,
        0..a.ncols(),
        Schedule::default(),
        &kernel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn csr_csc_roundtrip_exact() {
        let a = gen::random(40, 30, 250, 21);
        let csc = Csc::from_csr(&a);
        assert_eq!(csc.nnz(), a.nnz());
        let back = csc.to_csr();
        assert_eq!(back.to_dense(), a.to_dense());
    }

    #[test]
    fn csc_matvec_equals_csr_matvec() {
        let a = gen::random(50, 35, 300, 22);
        let csc = Csc::from_csr(&a);
        let x: Vec<f64> = (0..35).map(|i| (i % 9) as f64 * 0.5 - 2.0).collect();

        let mut y_csr = vec![0.0f64; 50];
        a.matvec_seq(&x, &mut y_csr);
        let mut y_csc = vec![0.0f64; 50];
        csc.matvec_seq(&x, &mut y_csc);
        for (u, v) in y_csr.iter().zip(&y_csc) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn csc_matvec_strategies_match_seq() {
        let a = gen::random(80, 60, 600, 23);
        let csc = Csc::from_csr(&a);
        let x: Vec<f64> = (0..60).map(|i| (i % 5) as f64).collect();
        let mut want = vec![0.0f64; 80];
        csc.matvec_seq(&x, &mut want);

        let pool = ThreadPool::new(4);
        for strategy in Strategy::all(16) {
            let mut y = vec![0.0f64; 80];
            csc_matvec_with_strategy(strategy, &pool, &csc, &x, &mut y);
            for (i, (g, w)) in y.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "{} at {i}", strategy.label());
            }
        }
    }

    #[test]
    fn column_access() {
        let a = Csr::from_triplets(3, 3, vec![(0, 1, 2.0), (2, 1, 5.0), (1, 0, 7.0)]);
        let csc = Csc::from_csr(&a);
        let (rows, vals) = csc.col(1);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 5.0]);
        assert_eq!(csc.col(2).0.len(), 0);
    }
}
