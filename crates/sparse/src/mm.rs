//! Matrix Market (`.mtx`) I/O.
//!
//! Supports the coordinate format the evaluation matrices use:
//! `%%MatrixMarket matrix coordinate {real|integer|pattern}
//! {general|symmetric}`. Symmetric files store only the lower triangle;
//! the reader mirrors off-diagonal entries, matching how the paper's
//! matrices would be loaded ("the matrices are actually symmetric, \[but\]
//! all operations were performed as if applied to general matrices").

use crate::Csr;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file (with a human-readable reason).
    Parse(String),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

#[derive(PartialEq, Clone, Copy)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(PartialEq, Clone, Copy)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a coordinate-format Matrix Market stream into a [`Csr<f64>`].
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr<f64>, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err("missing %%MatrixMarket matrix header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(format!(
            "unsupported format '{}' (only coordinate)",
            tokens[2]
        )));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(format!("unsupported field type '{other}'"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(parse_err(format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(format!("bad size line '{size_line}': {e}")))?;
    let [nrows, ncols, nnz] = dims[..] else {
        return Err(parse_err(format!(
            "size line needs 3 fields: '{size_line}'"
        )));
    };

    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(
        nnz * if symmetry == Symmetry::Symmetric {
            2
        } else {
            1
        },
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|e| parse_err(format!("bad column index: {e}")))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            _ => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|e| parse_err(format!("bad value: {e}")))?,
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!(
                "entry ({r},{c}) outside 1..={nrows} x 1..={ncols}"
            )));
        }
        triplets.push((r - 1, c - 1, v));
        if symmetry == Symmetry::Symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(Csr::from_triplets(nrows, ncols, triplets))
}

/// Reads a `.mtx` file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Csr<f64>, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a matrix as `coordinate real general`.
pub fn write_matrix_market<W: Write>(mut w: W, a: &Csr<f64>) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spray-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:e}", r + 1, c as usize + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let src = "\
%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 1 1.5
2 3 -2.0
3 1 4e-1
";
        let a = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 3);
        let d = a.to_dense();
        assert_eq!(d[0][0], 1.5);
        assert_eq!(d[1][2], -2.0);
        assert!((d[2][0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn parse_symmetric_mirrors() {
        let src = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 3.0
2 1 5.0
";
        let a = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3); // diagonal + mirrored pair
        let d = a.to_dense();
        assert_eq!(d[0][1], 5.0);
        assert_eq!(d[1][0], 5.0);
    }

    #[test]
    fn parse_pattern() {
        let src = "\
%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
";
        let a = read_matrix_market(src.as_bytes()).unwrap();
        let d = a.to_dense();
        assert_eq!(d[0][1], 1.0);
        assert_eq!(d[1][0], 1.0);
    }

    #[test]
    fn roundtrip() {
        let a = crate::gen::random(20, 15, 60, 3);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        let (da, db) = (a.to_dense(), b.to_dense());
        for r in 0..20 {
            for c in 0..15 {
                assert!((da[r][c] - db[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn one_based_zero_rejected() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }
}
