//! Multi-vector transpose products: `Y += Aᵀ·X` for a block of `k`
//! vectors — the natural generalization of the §VI-B kernel, and a user of
//! the `spray::nd` 2-D reduction support (each scatter now updates a whole
//! row of the result block).

use crate::{Csr, Num};
use ompsim::{Schedule, ThreadPool};
use spray::nd::{reduce2_strategy, Grid2, Kernel2, View2};
use spray::{ReducerView, RunReport, Strategy, Sum};

/// Fig. 10 generalized to `k` right-hand sides:
/// `for k in row(i): Y[cols[k]][..] += vals[k] * X[i][..]`.
pub struct TmmKernel<'a, T: Num> {
    /// The matrix.
    pub a: &'a Csr<T>,
    /// Input block, `nrows × k` row-major.
    pub x: &'a Grid2<T>,
}

impl<T: Num> Kernel2<T> for TmmKernel<'_, T> {
    #[inline]
    fn item<V: ReducerView<T>>(&self, view: &mut View2<'_, V>, row: usize) {
        let xs = self.x.row(row);
        let (cols, vals) = self.a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            for (j, &xj) in xs.iter().enumerate() {
                view.apply(c as usize, j, v * xj);
            }
        }
    }
}

/// Computes `Y += Aᵀ·X` with the given strategy; `X` is `nrows × k`,
/// `Y` is `ncols × k`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn tmm_with_strategy<T: Num>(
    strategy: Strategy,
    pool: &ThreadPool,
    a: &Csr<T>,
    x: &Grid2<T>,
    y: &mut Grid2<T>,
) -> RunReport {
    assert_eq!(x.nrows(), a.nrows(), "X must have nrows rows");
    assert_eq!(y.nrows(), a.ncols(), "Y must have ncols rows");
    assert_eq!(x.ncols(), y.ncols(), "X and Y must have the same k");
    let kernel = TmmKernel { a, x };
    reduce2_strategy::<T, Sum, _>(
        strategy,
        pool,
        y,
        0..a.nrows(),
        Schedule::default(),
        &kernel,
    )
}

/// Sequential reference for [`tmm_with_strategy`].
pub fn tmm_seq<T: Num>(a: &Csr<T>, x: &Grid2<T>, y: &mut Grid2<T>) {
    assert_eq!(x.nrows(), a.nrows());
    assert_eq!(y.nrows(), a.ncols());
    assert_eq!(x.ncols(), y.ncols());
    for row in 0..a.nrows() {
        let (cols, vals) = a.row(row);
        for (&c, &v) in cols.iter().zip(vals) {
            for j in 0..x.ncols() {
                y[(c as usize, j)] = y[(c as usize, j)] + v * x[(row, j)];
            }
        }
    }
}

/// Normal-equations assembly `G += AᵀA` into a dense `ncols × ncols` Gram
/// matrix — the classic least-squares kernel, whose assembly is a 2-D
/// scatter: each row `i` of `A` contributes the outer product of its
/// nonzeros, `G[c1][c2] += v1·v2`. Only sensible when `ncols` is small
/// (the result is dense).
///
/// # Panics
/// Panics on shape mismatch.
pub fn gram_with_strategy<T: Num>(
    strategy: Strategy,
    pool: &ThreadPool,
    a: &Csr<T>,
    g: &mut Grid2<T>,
) -> RunReport {
    assert_eq!(g.nrows(), a.ncols(), "G must be ncols × ncols");
    assert_eq!(g.ncols(), a.ncols(), "G must be ncols × ncols");
    struct GramKernel<'a, T: Num> {
        a: &'a Csr<T>,
    }
    impl<T: Num> Kernel2<T> for GramKernel<'_, T> {
        #[inline]
        fn item<V: ReducerView<T>>(&self, view: &mut View2<'_, V>, row: usize) {
            let (cols, vals) = self.a.row(row);
            for (&c1, &v1) in cols.iter().zip(vals) {
                for (&c2, &v2) in cols.iter().zip(vals) {
                    view.apply(c1 as usize, c2 as usize, v1 * v2);
                }
            }
        }
    }
    let kernel = GramKernel { a };
    reduce2_strategy::<T, Sum, _>(
        strategy,
        pool,
        g,
        0..a.nrows(),
        Schedule::default(),
        &kernel,
    )
}

/// Sequential reference for [`gram_with_strategy`].
pub fn gram_seq<T: Num>(a: &Csr<T>, g: &mut Grid2<T>) {
    assert_eq!(g.nrows(), a.ncols());
    assert_eq!(g.ncols(), a.ncols());
    for row in 0..a.nrows() {
        let (cols, vals) = a.row(row);
        for (&c1, &v1) in cols.iter().zip(vals) {
            for (&c2, &v2) in cols.iter().zip(vals) {
                let (i, j) = (c1 as usize, c2 as usize);
                g[(i, j)] = g[(i, j)] + v1 * v2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn block(nrows: usize, k: usize, salt: usize) -> Grid2<f64> {
        Grid2::from_vec(
            (0..nrows * k)
                .map(|i| ((i * 31 + salt) % 13) as f64 * 0.5 - 3.0)
                .collect(),
            nrows,
            k,
        )
    }

    #[test]
    fn tmm_matches_sequential_for_all_strategies() {
        let a = gen::random(120, 90, 900, 5);
        let x = block(120, 4, 1);
        let mut want = Grid2::zeros(90, 4);
        tmm_seq(&a, &x, &mut want);

        let pool = ThreadPool::new(4);
        for strategy in Strategy::all(32) {
            let mut y = Grid2::zeros(90, 4);
            tmm_with_strategy(strategy, &pool, &a, &x, &mut y);
            for r in 0..90 {
                for c in 0..4 {
                    assert!(
                        (y[(r, c)] - want[(r, c)]).abs() < 1e-9,
                        "{} differs at ({r},{c})",
                        strategy.label()
                    );
                }
            }
        }
    }

    #[test]
    fn single_column_tmm_equals_tmv() {
        let a = gen::random(80, 70, 500, 6);
        let xv: Vec<f64> = (0..80).map(|i| (i % 7) as f64).collect();
        let x = Grid2::from_vec(xv.clone(), 80, 1);

        let mut yv = vec![0.0f64; 70];
        a.tmatvec_seq(&xv, &mut yv);

        let mut y = Grid2::zeros(70, 1);
        tmm_seq(&a, &x, &mut y);
        for r in 0..70 {
            assert!((y[(r, 0)] - yv[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matches_seq_and_is_symmetric_psd() {
        let a = gen::random(200, 12, 600, 8);
        let mut want = Grid2::zeros(12, 12);
        gram_seq(&a, &mut want);

        let pool = ThreadPool::new(3);
        for strategy in [
            Strategy::Atomic,
            Strategy::Keeper,
            Strategy::BlockCas { block_size: 16 },
        ] {
            let mut g = Grid2::zeros(12, 12);
            gram_with_strategy(strategy, &pool, &a, &mut g);
            for r in 0..12 {
                for c in 0..12 {
                    assert!(
                        (g[(r, c)] - want[(r, c)]).abs() < 1e-9,
                        "{} at ({r},{c})",
                        strategy.label()
                    );
                }
            }
        }
        // Gram matrices are symmetric with nonnegative diagonal.
        for r in 0..12 {
            assert!(want[(r, r)] >= 0.0);
            for c in 0..12 {
                assert!((want[(r, c)] - want[(c, r)]).abs() < 1e-9);
            }
        }
        // x'Gx = |Ax|^2 >= 0 for a probe vector (PSD spot check).
        let x: Vec<f64> = (0..12).map(|i| (i as f64) - 6.0).collect();
        let quad: f64 = (0..12)
            .flat_map(|r| (0..12).map(move |c| (r, c)))
            .map(|(r, c)| x[r] * want[(r, c)] * x[c])
            .sum();
        assert!(quad >= -1e-9, "quadratic form negative: {quad}");
    }

    #[test]
    #[should_panic(expected = "same k")]
    fn shape_mismatch_panics() {
        let a = gen::random(10, 10, 20, 7);
        let x = block(10, 2, 0);
        let mut y = Grid2::zeros(10, 3);
        let pool = ThreadPool::new(1);
        let _ = tmm_with_strategy(Strategy::Atomic, &pool, &a, &x, &mut y);
    }
}
