//! Compressed sparse row (CSR) matrices.
//!
//! The storage layout matches what the paper's §VI-B kernel iterates:
//! `rowptr` (row extents into the value/column arrays), `cols` (column
//! indices as `u32`), `vals`. A CSR matrix read as "columns of the
//! transpose" doubles as a CSC matrix, which is how the transpose products
//! and the inspector/executor baseline work.

use crate::Num;
use std::fmt;

/// A CSR sparse matrix.
#[derive(Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Csr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.vals.len()
        )
    }
}

impl<T: Num> Csr<T> {
    /// Builds a CSR matrix from unordered `(row, col, value)` triplets.
    /// Duplicate coordinates are summed (Matrix Market semantics).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds or `ncols > u32::MAX`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> Self {
        assert!(ncols <= u32::MAX as usize, "too many columns for u32 ids");
        let mut t: Vec<(usize, usize, T)> = triplets.into_iter().collect();
        for &(r, c, _) in &t {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
        }
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut cols: Vec<u32> = Vec::with_capacity(t.len());
        let mut vals: Vec<T> = Vec::with_capacity(t.len());
        rowptr.push(0);
        let mut cur_row = 0usize;
        for (r, c, v) in t {
            while cur_row < r {
                rowptr.push(cols.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (cols.last(), rowptr.len() == cur_row + 1) {
                // Merge a duplicate coordinate within the current row.
                if !cols.is_empty() && *rowptr.last().unwrap() < cols.len() && last_c as usize == c
                {
                    let lv = vals.last_mut().unwrap();
                    *lv = *lv + v;
                    continue;
                }
            }
            cols.push(c as u32);
            vals.push(v);
        }
        while cur_row < nrows {
            rowptr.push(cols.len());
            cur_row += 1;
        }
        debug_assert_eq!(rowptr.len(), nrows + 1);
        Csr {
            nrows,
            ncols,
            rowptr,
            cols,
            vals,
        }
    }

    /// Builds directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (lengths, monotonicity,
    /// column bounds).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length mismatch");
        assert_eq!(cols.len(), vals.len(), "cols/vals length mismatch");
        assert_eq!(*rowptr.last().unwrap(), cols.len(), "rowptr end mismatch");
        assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr not monotone"
        );
        assert!(
            cols.iter().all(|&c| (c as usize) < ncols),
            "column index out of bounds"
        );
        Csr {
            nrows,
            ncols,
            rowptr,
            cols,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row extents array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices array.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Values array.
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// The `(cols, vals)` slices of one row.
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let lo = self.rowptr[r];
        let hi = self.rowptr[r + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Explicit transpose: rows become columns. `O(nnz)` counting sort.
    /// (This is exactly the matrix copy the simulated MKL
    /// inspector/executor builds when given an operation hint.)
    pub fn transpose(&self) -> Csr<T> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let rowptr_t = counts.clone();
        let mut cols_t = vec![0u32; self.nnz()];
        let mut vals_t = vec![T::default(); self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            for k in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.cols[k] as usize;
                let dst = cursor[c];
                cursor[c] += 1;
                cols_t[dst] = r as u32;
                vals_t[dst] = self.vals[k];
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr: rowptr_t,
            cols: cols_t,
            vals: vals_t,
        }
    }

    /// Dense representation, for tests on small matrices.
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut d = vec![vec![T::default(); self.ncols]; self.nrows];
        for (r, row) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = row[c as usize] + v;
            }
        }
        d
    }

    /// Sequential `y += A · x` (row gather, no reduction needed).
    pub fn matvec_seq(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = T::default();
            for (&c, &v) in cols.iter().zip(vals) {
                acc = acc + v * x[c as usize];
            }
            *yr = *yr + acc;
        }
    }

    /// Sequential `y += Aᵀ · x` — exactly Fig. 10 of the paper: a scatter
    /// to data-dependent output locations `y[cols[k]]`.
    pub fn tmatvec_seq(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        for (r, &xr) in x.iter().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] = y[c as usize] + v * xr;
            }
        }
    }

    /// Whether the matrix equals its transpose (pattern and values).
    pub fn is_symmetric(&self) -> bool
    where
        T: PartialEq,
    {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.rowptr == t.rowptr && self.cols == t.cols && self.vals == t.vals
    }

    /// The main diagonal as a dense vector (zeros where absent).
    pub fn diagonal(&self) -> Vec<T> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![T::default(); n];
        for (r, slot) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            if let Ok(k) = cols.binary_search(&(r as u32)) {
                *slot = vals[k];
            }
        }
        d
    }

    /// Returns the matrix with every value passed through `f` (same
    /// sparsity pattern).
    pub fn map_values(&self, f: impl Fn(T) -> T) -> Csr<T> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            cols: self.cols.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum of two same-shaped matrices (union of patterns).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Csr<T>) -> Csr<T> {
        assert_eq!(self.nrows, other.nrows, "row count mismatch");
        assert_eq!(self.ncols, other.ncols, "column count mismatch");
        let mut triplets = Vec::with_capacity(self.nnz() + other.nnz());
        for m in [self, other] {
            for r in 0..m.nrows {
                let (cols, vals) = m.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    triplets.push((r, c as usize, v));
                }
            }
        }
        Csr::from_triplets(self.nrows, self.ncols, triplets)
    }

    /// Total heap bytes of the three CSR arrays (used for memory reports).
    pub fn heap_bytes(&self) -> usize {
        self.rowptr.capacity() * std::mem::size_of::<usize>()
            + self.cols.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        // [ 0 0 5 ]
        Csr::from_triplets(
            4,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 4.0),
                (3, 2, 5.0),
            ],
        )
    }

    #[test]
    fn from_triplets_layout() {
        let a = example();
        assert_eq!(a.nrows(), 4);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.rowptr(), &[0, 2, 2, 4, 5]);
        assert_eq!(a.cols(), &[0, 2, 0, 1, 2]);
        assert_eq!(a.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (1, 0, 1.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.vals(), &[3.5, 1.0]);
    }

    #[test]
    fn unsorted_triplets_ok() {
        let a = Csr::from_triplets(2, 2, vec![(1, 1, 4.0), (0, 0, 1.0), (1, 0, 3.0)]);
        assert_eq!(a.rowptr(), &[0, 1, 3]);
        assert_eq!(a.cols(), &[0, 0, 1]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = example();
        let att = a.transpose().transpose();
        assert_eq!(a.to_dense(), att.to_dense());
    }

    #[test]
    fn transpose_matches_dense() {
        let a = example();
        let at = a.transpose();
        let d = a.to_dense();
        let dt = at.to_dense();
        for r in 0..a.nrows() {
            for c in 0..a.ncols() {
                assert_eq!(d[r][c], dt[c][r]);
            }
        }
    }

    #[test]
    fn matvec_and_tmatvec() {
        let a = example();
        let x3 = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 4];
        a.matvec_seq(&x3, &mut y);
        assert_eq!(y, vec![7.0, 0.0, 11.0, 15.0]);

        let x4 = [1.0, 1.0, 1.0, 1.0];
        let mut yt = vec![0.0; 3];
        a.tmatvec_seq(&x4, &mut yt);
        assert_eq!(yt, vec![4.0, 4.0, 7.0]);
    }

    #[test]
    fn tmatvec_equals_transpose_matvec() {
        let a = example();
        let x = [0.5, -1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        a.tmatvec_seq(&x, &mut y1);
        let at = a.transpose();
        let mut y2 = vec![0.0; 3];
        at.matvec_seq(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix() {
        let a: Csr<f64> = Csr::from_triplets(0, 0, vec![]);
        assert_eq!(a.nnz(), 0);
        let mut y: Vec<f64> = vec![];
        a.matvec_seq(&[], &mut y);
    }

    #[test]
    fn symmetry_and_diagonal() {
        let sym = Csr::from_triplets(
            3,
            3,
            vec![(0, 1, 2.0), (1, 0, 2.0), (1, 1, 5.0), (2, 2, 1.0)],
        );
        assert!(sym.is_symmetric());
        assert_eq!(sym.diagonal(), vec![0.0, 5.0, 1.0]);
        let asym = Csr::from_triplets(2, 2, vec![(0, 1, 2.0)]);
        assert!(!asym.is_symmetric());
        let rect = Csr::from_triplets(2, 3, vec![(0, 0, 1.0)]);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn map_values_and_add() {
        let a = example();
        let doubled = a.map_values(|v| v * 2.0);
        assert_eq!(doubled.nnz(), a.nnz());
        assert_eq!(doubled.vals()[0], 2.0);

        let s = a.add(&a.map_values(|v| -v));
        // A + (-A) = 0 everywhere (entries may remain explicitly).
        assert!(s.vals().iter().all(|&v| v == 0.0));

        let b = Csr::from_triplets(4, 3, vec![(1, 1, 9.0)]);
        let sum = a.add(&b);
        assert_eq!(sum.to_dense()[1][1], 9.0);
        assert_eq!(sum.to_dense()[0][0], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_triplet_panics() {
        let _ = Csr::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "rowptr not monotone")]
    fn bad_raw_panics() {
        let _ = Csr::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }
}
