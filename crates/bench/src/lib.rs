//! # bench — harness regenerating the SPRAY paper's tables and figures
//!
//! One binary per figure (run with `--release`):
//!
//! | Paper figure | Binary | What it prints |
//! |---|---|---|
//! | Fig. 11 | `fig11_conv_speedup` | conv-backprop speedup over sequential per strategy × thread count |
//! | Fig. 12 | `fig12_optlevels` | best absolute conv-backprop times for this build profile (run under `--profile opt1`/`opt2`/`release` to sweep optimization levels) |
//! | Fig. 13 | `fig13_blocksizes` | block-reducer scalability across block sizes |
//! | Fig. 14 | `fig14_s3dkt3m2` | transpose-SpMV time & memory on the banded s3dkt3m2 stand-in, incl. simulated MKL baselines |
//! | Fig. 15 | `fig15_debr` | same on the de Bruijn (debr) stand-in |
//! | Fig. 16 | `fig16_lulesh` | LULESH proxy whole-run time & memory, incl. the 8-copy domain scheme |
//! | §IV/§V discussion | `ablation_schedule`, `ablation_keeper`, `ablation_atomics`, `ablation_autotune` | schedule/chunk, keeper-ownership, atomic-op and auto-tuner ablations |
//! | §VII remarks | `summary_table` | every strategy × all three workloads, time and memory side by side |
//! | hot path | `apply_overhead` | per-apply ns of the block reducers' cached fast path (telemetry on and off) vs the legacy assert+div/mod path, per access pattern (writes `BENCH_apply_overhead.json`) |
//! | telemetry | `telemetry_smoke` | runs a scatter under every strategy family, prints each `RunReport` as JSON and re-parses it, asserting counters are populated (CI gate) |
//! | region plans | `plan_amortize` | planned vs unplanned steady-state region time for the block flavors and Keeper on streaming-scatter and transpose-SpMV shapes, plus plan-build cost and break-even region count (writes `BENCH_plan_amortize.json`; `--check` turns it into a CI gate) |
//! | adaptive execution | `adaptive_shift` | dense front-loaded region stream with a sparse tail, run fixed (block-private, atomic) vs adaptive: per-phase steady-state time plus migration count/seconds and per-strategy region counts (writes `BENCH_adaptive_shift.json`; `--check` turns it into a CI gate) |
//! | — | `plot_ascii` | renders any results CSV as an ASCII chart |
//!
//! Every binary prints CSV to stdout (`column -s, -t` renders it) plus
//! `#`-prefixed context lines. Common flags: `--threads 1,2,4`,
//! `--quick` (shrink the workload), `--reps N`.

#![warn(missing_docs)]

use std::time::Instant;

pub mod args;
pub mod json;
pub mod plot;
pub mod spmv_fig;
pub mod workloads;

/// Result of timing one configuration.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Best (minimum) wall time over all repetitions, seconds.
    pub best: f64,
    /// Mean wall time, seconds.
    pub mean: f64,
    /// Repetitions measured.
    pub reps: usize,
}

/// Runs `f` `reps` times (after one untimed warm-up) and reports best and
/// mean wall time. The paper repeats runs ≥10× and reports means; `--reps`
/// controls the same here.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> Timing {
    f(); // warm-up: page in buffers, warm the pool
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    Timing {
        best,
        mean: total / reps as f64,
        reps,
    }
}

/// Formats a byte count for CSV output as MiB.
pub fn fmt_mib(b: usize) -> String {
    format!("{:.2}", b as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reps_counts() {
        let mut calls = 0;
        let t = time_reps(3, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3
        assert_eq!(t.reps, 3);
        assert!(t.best <= t.mean + 1e-12);
    }

    #[test]
    fn fmt_mib_scales() {
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        assert_eq!(fmt_mib(0), "0.00");
    }
}
