//! Fig. 12 — best absolute conv-backprop run time per compiler and
//! optimization setting.
//!
//! The paper sweeps {icc, gcc, clang} × {O1, O2, O3}; our compiler axis is
//! rustc only, so the sweep is over cargo profiles (DESIGN.md experiment
//! index). Run this binary once per profile and concatenate the outputs:
//!
//! ```sh
//! cargo run -p bench --profile opt1    --bin fig12_optlevels
//! cargo run -p bench --profile opt2    --bin fig12_optlevels
//! cargo run -p bench --profile release --bin fig12_optlevels   # opt-level 3
//! ```
//!
//! For each strategy the best time across the `--threads` sweep is
//! reported, matching the figure ("best across all tested thread counts").

use bench::args::Opts;
use bench::time_reps;
use bench::workloads::{conv_input, conv_size, stencil};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::Backprop3Kernel;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Best-effort profile label: cargo exposes no direct profile name, so we
/// mark debug builds and rely on OPT_PROFILE (set by the runner) otherwise.
fn profile_label() -> String {
    if cfg!(debug_assertions) {
        "dev".into()
    } else {
        std::env::var("OPT_PROFILE").unwrap_or_else(|_| "release-family".into())
    }
}

fn main() {
    let opts = Opts::parse();
    let n = conv_size(opts.quick, opts.n);
    let inp = conv_input(n);
    let w = stencil();
    let kernel = Backprop3Kernel { inp: &inp, w };
    let profile = profile_label();

    println!("# Fig 12: best conv-backprop times, profile = {profile}, N = {n}");
    println!("profile,strategy,best_s,best_threads");

    let mut out = vec![0.0f32; n];
    let t_seq = time_reps(opts.reps, || {
        out.fill(0.0);
        spray_conv::backprop3_seq(&mut out, &inp, w);
    });
    println!("{profile},sequential,{:.6},1", t_seq.best);

    for &strategy in &Strategy::competitive(1024) {
        let mut best = f64::INFINITY;
        let mut best_threads = 0;
        for &threads in &opts.threads {
            let pool = ThreadPool::new(threads);
            let t = time_reps(opts.reps, || {
                out.fill(0.0);
                reduce_strategy::<f32, Sum, _>(
                    strategy,
                    &pool,
                    &mut out,
                    1..n - 1,
                    Schedule::default(),
                    &kernel,
                );
            });
            if t.best < best {
                best = t.best;
                best_threads = threads;
            }
        }
        println!("{profile},{},{best:.6},{best_threads}", strategy.label());
    }
}
