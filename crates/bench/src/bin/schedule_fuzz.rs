//! Schedule fuzzer: sweeps seeds through the differential oracle.
//!
//! Each seed runs every strategy (unplanned + plan-recording + replays,
//! i64 and f64) against the sequential reduction. Built with
//! `--features verify`, each sweep also installs ompsim's seeded
//! schedule controller, so the interleaving is perturbed PCT-style and
//! any failure is a one-line repro: re-running with `--seed <S>`
//! replays the exact decision stream that exposed it. Without the
//! feature the binary degenerates to an unperturbed differential sweep
//! (and says so).
//!
//! Modes:
//!
//! * default — sweep `--seeds` seeds from `--start` (or just `--seed`),
//!   failing if any seed mismatches;
//! * `--broken` — run the planted-bug canary (block-CAS with the
//!   ownership CAS dropped) and exit 0 only if some seed in the budget
//!   *catches* the bug (CI inverts the gate: not catching is the
//!   failure);
//! * `--faults N` — N fault-injection iterations: an injected mid-region
//!   panic must poison the region (never deadlock) and leave pool +
//!   executor able to produce exact results afterwards;
//! * `--migrations N` — N seeds through the adaptive differential
//!   oracle: each seed installs a controller that plants forced strategy
//!   migrations at region boundaries (plus the cost model's own) and
//!   checks the adaptive executor bit-for-bit (i64) against the
//!   sequential loop, then injects a fault during a migration drain and
//!   requires poison-not-deadlock with no lost updates afterwards. The
//!   sweep fails if NO seed planted a migration (the mode lost its
//!   teeth). Without `--features verify` it degrades to the unperturbed
//!   adaptive oracle (cost-model migrations only, no fault injection);
//! * `--arena N` — N seeds through the arena-retention fingerprint
//!   check: the seeded controller must observe identical hook totals
//!   and per-thread merge orders whether regions run on fresh arena
//!   slabs or on scratch recycled from a previous region, and the
//!   planted-migration drain fingerprint must replay identically.
//!   Requires `--features verify`;
//! * `--segmented N` — N seeds through the two-level segmented-reducer
//!   sweep: each seed runs `Strategy::Segmented` across bucket
//!   granularities and scratch budgets (unlimited, tight, and zero —
//!   the last pins every bucket fill to the sorted-overflow path) under
//!   the seeded controller, two back-to-back regions per combination so
//!   retained scratch is always exercised, bit-identical (i64) to the
//!   sequential loop; then plants a panic at a seed-chosen
//!   `BucketSpill` crossing and requires poison-not-deadlock with an
//!   exact unperturbed rerun. The sweep fails if NO seed crossed a
//!   bucket spill (the mode lost its teeth). Requires
//!   `--features verify`;
//! * `--service N` — N seeds through the reduction-service concurrent
//!   jobs oracle: each seed runs a deterministic job set through a
//!   [`ReductionService`](spray_service::ReductionService) twice —
//!   serial submission with batching off, then two submitter threads
//!   with batching and the pipelined epilogue on — under a seeded
//!   controller with planted strategy migrations, and requires both
//!   runs bit-identical (i64) to the sequential loop and to each
//!   other. Requires `--features verify`;
//! * `--delta N` — N seeds through the incremental-reduction oracle:
//!   each seed drives two streams of delta batches (invertible i64 Sum
//!   hitting both the dirty-block and full-refold paths, and i64 Min on
//!   the refold-only path) through
//!   [`run_delta`](spray::RegionExecutor::run_delta) under a seeded
//!   controller with planted strategy migrations, checking every round
//!   bit-identical against a canonical replay of the live contribution
//!   set; then plants panics at seed-chosen `DeltaApply` crossings on
//!   both the parallel and serial staging paths and requires
//!   poison-not-corrupt (pre-batch result intact) plus an exact
//!   post-fault replay. The sweep fails if NO seed applied deltas or
//!   retractions (the mode lost its teeth). Requires
//!   `--features verify`;
//! * `--numa N` — N seeds through the topology differential oracle:
//!   each seed runs every strategy under a flat topology (checked
//!   bit-exactly against the sequential loop) and under three emulated
//!   sharded topologies (`1xT`, `2x⌈T/2⌉`, `Tx1`), recording plus a
//!   planned replay per leg, and requires every sharded result
//!   bit-identical to the flat control — topology may change routing,
//!   merge schedules and arena placement, never results; then plants a
//!   panic at a seed-chosen `ShardRoute` crossing (a keeper apply
//!   routed to the *other* node) and requires poison-not-corrupt with
//!   an exact unperturbed rerun. The sweep fails if NO seed routed a
//!   cross-node contribution (the mode lost its teeth). Requires
//!   `--features verify`.

use spray::verify::OracleCfg;
use spray::Strategy;

struct FuzzOpts {
    seeds: u64,
    start: u64,
    threads: usize,
    n: usize,
    updates: usize,
    block_size: usize,
    dynamic: bool,
    no_floats: bool,
    replays: usize,
    broken: bool,
    faults: u64,
    migrations: u64,
    arena: u64,
    segmented: u64,
    service: u64,
    delta: u64,
    numa: u64,
    quiet: bool,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seeds: 16,
            start: 0,
            threads: 4,
            n: 512,
            updates: 4096,
            block_size: 32,
            dynamic: false,
            no_floats: false,
            replays: 2,
            broken: false,
            faults: 0,
            migrations: 0,
            arena: 0,
            segmented: 0,
            service: 0,
            delta: 0,
            numa: 0,
            quiet: false,
        }
    }
}

const USAGE: &str = "usage: schedule_fuzz [--seed S | --seeds N --start S] [--threads T] \
[--n N] [--updates U] [--block-size B] [--replays R] [--dynamic] [--no-floats] \
[--broken] [--faults N] [--migrations N] [--arena N] [--segmented N] [--service N] \
[--delta N] [--numa N] [--quiet]";

fn parse_opts() -> FuzzOpts {
    let mut o = FuzzOpts::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                o.start = value(&mut args, "--seed").parse().expect("--seed: u64");
                o.seeds = 1;
            }
            "--seeds" => o.seeds = value(&mut args, "--seeds").parse().expect("--seeds: u64"),
            "--start" => o.start = value(&mut args, "--start").parse().expect("--start: u64"),
            "--threads" => {
                o.threads = value(&mut args, "--threads")
                    .parse()
                    .expect("--threads: usize")
            }
            "--n" => o.n = value(&mut args, "--n").parse().expect("--n: usize"),
            "--updates" => {
                o.updates = value(&mut args, "--updates")
                    .parse()
                    .expect("--updates: usize")
            }
            "--block-size" => {
                o.block_size = value(&mut args, "--block-size")
                    .parse()
                    .expect("--block-size: usize")
            }
            "--replays" => {
                o.replays = value(&mut args, "--replays")
                    .parse()
                    .expect("--replays: usize")
            }
            "--dynamic" => o.dynamic = true,
            "--no-floats" => o.no_floats = true,
            "--broken" => o.broken = true,
            "--faults" => o.faults = value(&mut args, "--faults").parse().expect("--faults: u64"),
            "--migrations" => {
                o.migrations = value(&mut args, "--migrations")
                    .parse()
                    .expect("--migrations: u64")
            }
            "--arena" => o.arena = value(&mut args, "--arena").parse().expect("--arena: u64"),
            "--segmented" => {
                o.segmented = value(&mut args, "--segmented")
                    .parse()
                    .expect("--segmented: u64")
            }
            "--service" => {
                o.service = value(&mut args, "--service")
                    .parse()
                    .expect("--service: u64")
            }
            "--delta" => o.delta = value(&mut args, "--delta").parse().expect("--delta: u64"),
            "--numa" => o.numa = value(&mut args, "--numa").parse().expect("--numa: u64"),
            "--quiet" => o.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn oracle_cfg(o: &FuzzOpts) -> OracleCfg {
    OracleCfg {
        n: o.n,
        updates: o.updates,
        threads: o.threads,
        block_size: o.block_size,
        strategies: Strategy::all(o.block_size),
        check_floats: !o.no_floats,
        dynamic: o.dynamic,
        replays: o.replays,
    }
}

fn repro_line(o: &FuzzOpts, seed: u64) -> String {
    let mut extra = String::new();
    if o.dynamic {
        extra.push_str(" --dynamic");
    }
    if o.no_floats {
        extra.push_str(" --no-floats");
    }
    format!(
        "repro: cargo run --release -p bench --features verify --bin schedule_fuzz -- \
         --seed {seed} --threads {} --n {} --updates {} --block-size {} --replays {}{extra}",
        o.threads, o.n, o.updates, o.block_size, o.replays
    )
}

#[cfg(feature = "verify")]
fn sweep(o: &FuzzOpts) -> u64 {
    use spray::verify::fuzz::fuzz_case;
    let cfg = oracle_cfg(o);
    let mut failures = 0u64;
    for seed in o.start..o.start + o.seeds {
        let outcome = fuzz_case(&cfg, seed);
        match outcome.result {
            Ok(stats) => {
                if !o.quiet {
                    let crossings: u64 = outcome.hook_totals.iter().sum();
                    println!(
                        "seed {seed}: ok ({} regions, {crossings} hook crossings, \
                         {} preemptions, {} merges by t0)",
                        stats.regions,
                        outcome.preemptions,
                        outcome.merge_orders.first().map_or(0, |m| m.len())
                    );
                }
            }
            Err(m) => {
                failures += 1;
                eprintln!("FAIL {m}");
                eprintln!("{}", repro_line(o, seed));
            }
        }
    }
    failures
}

#[cfg(not(feature = "verify"))]
fn sweep(o: &FuzzOpts) -> u64 {
    use ompsim::ThreadPool;
    use spray::verify::check_seed;
    eprintln!(
        "note: built without --features verify — running the unperturbed differential \
         oracle only (no schedule control, no replay)"
    );
    let cfg = oracle_cfg(o);
    let pool = ThreadPool::new(o.threads);
    let mut failures = 0u64;
    for seed in o.start..o.start + o.seeds {
        match check_seed(&pool, &cfg, seed) {
            Ok(stats) => {
                if !o.quiet {
                    println!("seed {seed}: ok ({} regions)", stats.regions);
                }
            }
            Err(m) => {
                failures += 1;
                eprintln!("FAIL {m}");
                eprintln!("{}", repro_line(o, seed));
            }
        }
    }
    failures
}

#[cfg(feature = "verify")]
fn broken_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::broken_case;
    for seed in o.start..o.start + o.seeds {
        if broken_case(o.threads, seed) {
            println!(
                "broken-CAS canary: lost updates exposed at seed {seed} \
                 ({} seed(s) into the sweep)",
                seed - o.start + 1
            );
            return 0;
        }
    }
    eprintln!(
        "broken-CAS canary NOT caught in {} seed(s) — the fuzzer lost its teeth",
        o.seeds
    );
    1
}

#[cfg(feature = "verify")]
fn faults_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::fault_case;
    let mut bad = 0;
    for seed in o.start..o.start + o.faults {
        match fault_case(o.threads, seed) {
            Ok(()) => {
                if !o.quiet {
                    println!("fault seed {seed}: poisoned cleanly, rerun exact");
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL fault seed {seed}: {e}");
            }
        }
    }
    if bad > 0 {
        eprintln!("fault injection: {bad} failure(s)");
        1
    } else {
        println!("fault injection: {} iteration(s) clean", o.faults);
        0
    }
}

/// One-line repro for a failing migration seed.
fn migration_repro_line(o: &FuzzOpts, seed: u64) -> String {
    let mut extra = String::new();
    if o.no_floats {
        extra.push_str(" --no-floats");
    }
    format!(
        "repro: cargo run --release -p bench --features verify --bin schedule_fuzz -- \
         --migrations 1 --start {seed} --threads {} --n {} --updates {} --block-size {} \
         --replays {}{extra}",
        o.threads, o.n, o.updates, o.block_size, o.replays
    )
}

#[cfg(feature = "verify")]
fn migrations_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::{migration_case, migration_fault_case};
    let cfg = oracle_cfg(o);
    let mut bad = 0u64;
    let mut planted = 0u64;
    for seed in o.start..o.start + o.migrations {
        let outcome = migration_case(&cfg, seed);
        planted += outcome.migrations;
        match outcome.result {
            Ok(stats) => {
                if !o.quiet {
                    println!(
                        "migration seed {seed}: ok ({} regions, {} migrations, \
                         {} decision crossings)",
                        stats.regions, outcome.migrations, outcome.decision_crossings
                    );
                }
            }
            Err(m) => {
                bad += 1;
                eprintln!("FAIL {m}");
                eprintln!("{}", migration_repro_line(o, seed));
            }
        }
        // A fault injected during a migration drain must poison the
        // region — never deadlock — and lose no updates afterwards.
        if let Err(e) = migration_fault_case(o.threads, seed) {
            bad += 1;
            eprintln!("FAIL migration fault seed {seed}: {e}");
            eprintln!("{}", migration_repro_line(o, seed));
        }
    }
    if bad > 0 {
        eprintln!(
            "migration fuzz: {bad} failure(s) over {} seed(s)",
            o.migrations
        );
        return 1;
    }
    if planted == 0 {
        eprintln!(
            "migration fuzz: {} seed(s) planted NO migrations — the mode lost its teeth",
            o.migrations
        );
        return 1;
    }
    println!(
        "migration fuzz: {} seed(s) from {} clean ({planted} migrations exercised, {} threads)",
        o.migrations, o.start, o.threads
    );
    0
}

#[cfg(not(feature = "verify"))]
fn migrations_main(o: &FuzzOpts) -> i32 {
    use ompsim::ThreadPool;
    use spray::verify::check_adaptive_seed;
    eprintln!(
        "note: built without --features verify — running the unperturbed adaptive \
         oracle only (cost-model migrations, no planted schedule, no fault injection)"
    );
    let cfg = oracle_cfg(o);
    let pool = ThreadPool::new(o.threads);
    let mut bad = 0u64;
    let mut migrations = 0u64;
    for seed in o.start..o.start + o.migrations {
        match check_adaptive_seed(&pool, &cfg, seed) {
            Ok(stats) => {
                migrations += stats.migrations;
                if !o.quiet {
                    println!(
                        "migration seed {seed}: ok ({} regions, {} migrations)",
                        stats.regions, stats.migrations
                    );
                }
            }
            Err(m) => {
                bad += 1;
                eprintln!("FAIL {m}");
                eprintln!("{}", migration_repro_line(o, seed));
            }
        }
    }
    if bad > 0 {
        eprintln!(
            "migration fuzz: {bad} failure(s) over {} seed(s)",
            o.migrations
        );
        return 1;
    }
    if migrations == 0 {
        eprintln!(
            "migration fuzz: {} seed(s) drove NO migrations — the mode lost its teeth",
            o.migrations
        );
        return 1;
    }
    println!(
        "migration fuzz: {} seed(s) from {} clean ({migrations} migrations exercised, {} threads)",
        o.migrations, o.start, o.threads
    );
    0
}

#[cfg(feature = "verify")]
fn arena_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::arena_case;
    let mut bad = 0u64;
    for seed in o.start..o.start + o.arena {
        match arena_case(o.threads, seed) {
            Ok(()) => {
                if !o.quiet {
                    println!(
                        "arena seed {seed}: fresh and retained-scratch fingerprints \
                         identical, migration drain replays"
                    );
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL arena seed {seed}: {e}");
                eprintln!(
                    "repro: cargo run --release -p bench --features verify --bin \
                     schedule_fuzz -- --arena 1 --start {seed} --threads {}",
                    o.threads
                );
            }
        }
    }
    if bad > 0 {
        eprintln!("arena fuzz: {bad} failure(s) over {} seed(s)", o.arena);
        return 1;
    }
    println!(
        "arena fuzz: {} seed(s) from {} clean ({} threads)",
        o.arena, o.start, o.threads
    );
    0
}

#[cfg(not(feature = "verify"))]
fn arena_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--arena requires --features verify");
    2
}

#[cfg(feature = "verify")]
fn segmented_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::{segmented_case, segmented_fault_case};
    let mut bad = 0u64;
    let mut spills = 0u64;
    for seed in o.start..o.start + o.segmented {
        let outcome = segmented_case(o.threads, seed);
        spills += outcome.bucket_spills;
        match outcome.result {
            Ok(()) => {
                if !o.quiet {
                    println!(
                        "segmented seed {seed}: ok ({} bucket spills, {} preemptions)",
                        outcome.bucket_spills, outcome.preemptions
                    );
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL {e}");
                eprintln!(
                    "repro: cargo run --release -p bench --features verify --bin \
                     schedule_fuzz -- --segmented 1 --start {seed} --threads {}",
                    o.threads
                );
            }
        }
        // A fault injected inside the bucket-overflow handler must
        // poison the region — never deadlock — and leave pool +
        // executor able to produce exact results afterwards.
        if let Err(e) = segmented_fault_case(o.threads, seed) {
            bad += 1;
            eprintln!("FAIL segmented fault seed {seed}: {e}");
            eprintln!(
                "repro: cargo run --release -p bench --features verify --bin \
                 schedule_fuzz -- --segmented 1 --start {seed} --threads {}",
                o.threads
            );
        }
    }
    if bad > 0 {
        eprintln!(
            "segmented fuzz: {bad} failure(s) over {} seed(s)",
            o.segmented
        );
        return 1;
    }
    if spills == 0 {
        eprintln!(
            "segmented fuzz: {} seed(s) crossed NO bucket spills — the mode lost its teeth",
            o.segmented
        );
        return 1;
    }
    println!(
        "segmented fuzz: {} seed(s) from {} clean ({spills} bucket spills exercised, {} threads)",
        o.segmented, o.start, o.threads
    );
    0
}

#[cfg(not(feature = "verify"))]
fn segmented_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--segmented requires --features verify");
    2
}

#[cfg(feature = "verify")]
fn service_main(o: &FuzzOpts) -> i32 {
    use spray_service::fuzz::service_case;
    let mut bad = 0u64;
    let mut migrations = 0u64;
    for seed in o.start..o.start + o.service {
        let outcome = service_case(seed);
        migrations += outcome.migrations;
        match outcome.result {
            Ok(()) => {
                if !o.quiet {
                    println!(
                        "service seed {seed}: serial and concurrent submission \
                         bit-identical ({} migrations)",
                        outcome.migrations
                    );
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL {e}");
                eprintln!(
                    "repro: cargo run --release -p bench --features verify --bin \
                     schedule_fuzz -- --service 1 --start {seed}"
                );
            }
        }
    }
    if bad > 0 {
        eprintln!("service fuzz: {bad} failure(s) over {} seed(s)", o.service);
        return 1;
    }
    if migrations == 0 {
        eprintln!(
            "service fuzz: {} seed(s) planted NO migrations — the mode lost its teeth",
            o.service
        );
        return 1;
    }
    println!(
        "service fuzz: {} seed(s) from {} clean ({migrations} migrations exercised)",
        o.service, o.start
    );
    0
}

#[cfg(not(feature = "verify"))]
fn service_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--service requires --features verify");
    2
}

#[cfg(feature = "verify")]
fn delta_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::{delta_case, delta_fault_case};
    let mut bad = 0u64;
    let mut applies = 0u64;
    let mut retractions = 0u64;
    for seed in o.start..o.start + o.delta {
        let outcome = delta_case(o.threads, seed);
        applies += outcome.delta_applies;
        retractions += outcome.retractions;
        match outcome.result {
            Ok(()) => {
                if !o.quiet {
                    println!(
                        "delta seed {seed}: incremental bit-identical to replay \
                         ({} delta applies, {} retractions, {} migrations, {} preemptions)",
                        outcome.delta_applies,
                        outcome.retractions,
                        outcome.migrations,
                        outcome.preemptions
                    );
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL {e}");
                eprintln!(
                    "repro: cargo run --release -p bench --features verify --bin \
                     schedule_fuzz -- --delta 1 --start {seed} --threads {}",
                    o.threads
                );
            }
        }
        // A fault injected mid-staging must poison the batch — never
        // corrupt the retained result — and an unperturbed replay of
        // the same batch must land exactly.
        if let Err(e) = delta_fault_case(o.threads, seed) {
            bad += 1;
            eprintln!("FAIL delta fault seed {seed}: {e}");
            eprintln!(
                "repro: cargo run --release -p bench --features verify --bin \
                 schedule_fuzz -- --delta 1 --start {seed} --threads {}",
                o.threads
            );
        }
    }
    if bad > 0 {
        eprintln!("delta fuzz: {bad} failure(s) over {} seed(s)", o.delta);
        return 1;
    }
    if applies == 0 || retractions == 0 {
        eprintln!(
            "delta fuzz: {} seed(s) drove NO delta applies/retractions \
             ({applies} applies, {retractions} retractions) — the mode lost its teeth",
            o.delta
        );
        return 1;
    }
    println!(
        "delta fuzz: {} seed(s) from {} clean ({applies} delta applies, \
         {retractions} retractions exercised, {} threads)",
        o.delta, o.start, o.threads
    );
    0
}

#[cfg(not(feature = "verify"))]
fn delta_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--delta requires --features verify");
    2
}

#[cfg(feature = "verify")]
fn numa_main(o: &FuzzOpts) -> i32 {
    use spray::verify::fuzz::{numa_case, numa_fault_case};
    let mut bad = 0u64;
    let mut routes = 0u64;
    for seed in o.start..o.start + o.numa {
        let outcome = numa_case(o.threads, seed);
        routes += outcome.shard_routes;
        match outcome.result {
            Ok(()) => {
                if !o.quiet {
                    println!(
                        "numa seed {seed}: sharded legs bit-identical to flat \
                         ({} shard routes, {} preemptions)",
                        outcome.shard_routes, outcome.preemptions
                    );
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("FAIL {e}");
                eprintln!(
                    "repro: cargo run --release -p bench --features verify --bin \
                     schedule_fuzz -- --numa 1 --start {seed} --threads {}",
                    o.threads
                );
            }
        }
        // A fault injected on a cross-node route must poison the region
        // — never corrupt a neighbor's shard — and leave pool + executor
        // able to produce exact results afterwards.
        if let Err(e) = numa_fault_case(o.threads, seed) {
            bad += 1;
            eprintln!("FAIL numa fault seed {seed}: {e}");
            eprintln!(
                "repro: cargo run --release -p bench --features verify --bin \
                 schedule_fuzz -- --numa 1 --start {seed} --threads {}",
                o.threads
            );
        }
    }
    if bad > 0 {
        eprintln!("numa fuzz: {bad} failure(s) over {} seed(s)", o.numa);
        return 1;
    }
    if routes == 0 {
        eprintln!(
            "numa fuzz: {} seed(s) routed NO cross-node contributions — the mode lost its teeth",
            o.numa
        );
        return 1;
    }
    println!(
        "numa fuzz: {} seed(s) from {} clean ({routes} cross-node routes exercised, {} threads)",
        o.numa, o.start, o.threads
    );
    0
}

#[cfg(not(feature = "verify"))]
fn numa_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--numa requires --features verify");
    2
}

#[cfg(not(feature = "verify"))]
fn broken_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--broken requires --features verify");
    2
}

#[cfg(not(feature = "verify"))]
fn faults_main(_o: &FuzzOpts) -> i32 {
    eprintln!("--faults requires --features verify");
    2
}

fn main() {
    let o = parse_opts();
    if o.broken {
        std::process::exit(broken_main(&o));
    }
    if o.faults > 0 {
        std::process::exit(faults_main(&o));
    }
    if o.migrations > 0 {
        std::process::exit(migrations_main(&o));
    }
    if o.arena > 0 {
        std::process::exit(arena_main(&o));
    }
    if o.segmented > 0 {
        std::process::exit(segmented_main(&o));
    }
    if o.service > 0 {
        std::process::exit(service_main(&o));
    }
    if o.delta > 0 {
        std::process::exit(delta_main(&o));
    }
    if o.numa > 0 {
        std::process::exit(numa_main(&o));
    }
    let failures = sweep(&o);
    if failures > 0 {
        eprintln!("schedule_fuzz: {failures} failing seed(s) of {}", o.seeds);
        std::process::exit(1);
    }
    println!(
        "schedule_fuzz: {} seed(s) from {} clean ({} threads)",
        o.seeds, o.start, o.threads
    );
}
