//! Fig. 13 — scalability of the SPRAY block reducers across block sizes
//! (plus keeper for reference), on the conv-backprop workload.
//!
//! The paper's finding: keeper, block-lock and block-CAS with block sizes
//! above 256 perform well; very small block sizes do not scale; larger
//! blocks are almost always better for this (high-locality) test case.

use bench::args::Opts;
use bench::time_reps;
use bench::workloads::{conv_input, conv_size, stencil};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::Backprop3Kernel;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

const BLOCK_SIZES: [usize; 6] = [16, 64, 256, 1024, 4096, 16384];

fn main() {
    let opts = Opts::parse();
    let n = conv_size(opts.quick, opts.n);
    let inp = conv_input(n);
    let w = stencil();
    let kernel = Backprop3Kernel { inp: &inp, w };

    println!("# Fig 13: block-size sweep on conv back-prop, N = {n}");
    println!("strategy,threads,mean_s,speedup_vs_seq");

    let mut out = vec![0.0f32; n];
    let t_seq = time_reps(opts.reps, || {
        out.fill(0.0);
        spray_conv::backprop3_seq(&mut out, &inp, w);
    });
    println!("sequential,1,{:.6},1.000", t_seq.mean);

    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        let mut strategies: Vec<Strategy> = vec![Strategy::Keeper];
        for &bs in &BLOCK_SIZES {
            strategies.push(Strategy::BlockPrivate { block_size: bs });
            strategies.push(Strategy::BlockLock { block_size: bs });
            strategies.push(Strategy::BlockCas { block_size: bs });
        }
        for strategy in strategies {
            let t = time_reps(opts.reps, || {
                out.fill(0.0);
                reduce_strategy::<f32, Sum, _>(
                    strategy,
                    &pool,
                    &mut out,
                    1..n - 1,
                    Schedule::default(),
                    &kernel,
                );
            });
            println!(
                "{},{},{:.6},{:.3}",
                strategy.label(),
                threads,
                t.mean,
                t_seq.mean / t.mean
            );
        }
    }
}
