//! Diffs two `BENCH_*.json` artifacts with relative slack (CI
//! bench-regression gate).
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--slack-pct 25]
//! ```
//!
//! Both files must share the harness's shape: top-level scalar config
//! keys (`n`, `block_size`, `reps`, ...) plus a `results` array of flat
//! row objects. Rows are matched by their identity fields (every string
//! field, plus `threads` when present); *timing* fields — names ending
//! in `_secs` or `_ns_per_apply` — regress when the candidate exceeds
//! `base * (1 + slack) + floor`, where the floor (50 µs / 0.3 ns)
//! absorbs scheduler jitter on micro-sized smoke runs. Improvements and
//! non-timing fields never fail. Prints a markdown diff table (CI pipes
//! it into the job summary).
//!
//! Exit codes: 0 clean, 1 regression, 2 incomparable configs (the
//! committed baseline was generated with different flags than the CI
//! re-run — regenerate it).

use bench::json::{parse, Json};

/// Slack floor for `_secs` fields (50 µs).
const FLOOR_SECS: f64 = 50e-6;
/// Slack floor for `_ns_per_apply` fields (0.3 ns).
const FLOOR_NS: f64 = 0.3;

fn is_timing(field: &str) -> bool {
    field.ends_with("_secs") || field.ends_with("_ns_per_apply")
}

fn floor_for(field: &str) -> f64 {
    if field.ends_with("_secs") {
        FLOOR_SECS
    } else {
        FLOOR_NS
    }
}

/// Identity of a result row: every string field plus `threads`, in key
/// order (`Json::Obj` is a `BTreeMap`, so this is deterministic).
fn row_key(row: &Json) -> String {
    let Json::Obj(map) = row else {
        return String::from("<non-object row>");
    };
    let mut parts = Vec::new();
    for (k, v) in map {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Num(n) if k == "threads" => parts.push(format!("threads={n}")),
            _ => {}
        }
    }
    parts.join(" ")
}

/// One compared timing metric.
struct DiffRow {
    key: String,
    metric: String,
    base: f64,
    cand: f64,
    delta_pct: f64,
    regressed: bool,
}

enum DiffError {
    /// Top-level config key disagrees: the artifacts are not comparable.
    Incomparable(String),
    /// Structural problem (missing `results`, row shapes).
    Malformed(String),
}

/// Compares candidate against baseline; returns the metric table or why
/// the comparison is impossible.
fn diff(base: &Json, cand: &Json, slack_pct: f64) -> Result<Vec<DiffRow>, DiffError> {
    let (Json::Obj(bmap), Json::Obj(cmap)) = (base, cand) else {
        return Err(DiffError::Malformed("top level must be an object".into()));
    };
    for (k, bv) in bmap {
        if k == "results" {
            continue;
        }
        match cmap.get(k) {
            Some(cv) if cv == bv => {}
            Some(cv) => {
                return Err(DiffError::Incomparable(format!(
                    "config key {k:?}: baseline {bv:?} vs candidate {cv:?}"
                )))
            }
            None => {
                return Err(DiffError::Incomparable(format!(
                    "config key {k:?} missing from candidate"
                )))
            }
        }
    }
    let rows = |j: &Json| -> Result<Vec<Json>, DiffError> {
        j.get("results")
            .and_then(|r| r.as_arr())
            .map(<[Json]>::to_vec)
            .ok_or_else(|| DiffError::Malformed("missing results array".into()))
    };
    let brows = rows(base)?;
    let crows = rows(cand)?;

    let mut out = Vec::new();
    for brow in &brows {
        let key = row_key(brow);
        let Some(crow) = crows.iter().find(|c| row_key(c) == key) else {
            return Err(DiffError::Malformed(format!(
                "row {key:?} missing from candidate results"
            )));
        };
        let Json::Obj(bfields) = brow else { continue };
        for (field, bval) in bfields {
            if !is_timing(field) {
                continue;
            }
            let (Some(b), Some(c)) = (bval.as_num(), crow.get(field).and_then(Json::as_num)) else {
                continue;
            };
            let limit = b * (1.0 + slack_pct / 100.0) + floor_for(field);
            let delta_pct = if b.abs() > f64::EPSILON {
                (c - b) / b * 100.0
            } else {
                0.0
            };
            out.push(DiffRow {
                key: key.clone(),
                metric: field.clone(),
                base: b,
                cand: c,
                delta_pct,
                regressed: c > limit,
            });
        }
    }
    Ok(out)
}

fn print_table(name: &str, rows: &[DiffRow]) {
    println!("### bench-diff: {name}");
    println!();
    println!("| config | metric | baseline | candidate | Δ% | status |");
    println!("|---|---|---:|---:|---:|---|");
    for r in rows {
        println!(
            "| {} | {} | {:.4e} | {:.4e} | {:+.1}% | {} |",
            r.key,
            r.metric,
            r.base,
            r.cand,
            r.delta_pct,
            if r.regressed { "**REGRESSED**" } else { "ok" }
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut slack_pct = 25.0;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--slack-pct" {
            slack_pct = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--slack-pct needs a number");
                std::process::exit(2);
            });
        } else {
            files.push(a.clone());
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--slack-pct P]");
        std::process::exit(2);
    }
    let read = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let base = read(&files[0]);
    let cand = read(&files[1]);
    match diff(&base, &cand, slack_pct) {
        Ok(rows) => {
            print_table(&files[1], &rows);
            let regressed = rows.iter().filter(|r| r.regressed).count();
            if regressed > 0 {
                eprintln!(
                    "bench_diff: {regressed} metric(s) beyond +{slack_pct}% slack vs {}",
                    files[0]
                );
                std::process::exit(1);
            }
            println!(
                "bench_diff: {} metric(s) within +{slack_pct}% slack",
                rows.len()
            );
        }
        Err(DiffError::Incomparable(why)) => {
            eprintln!(
                "bench_diff: artifacts are not comparable ({why}); regenerate the committed \
                 baseline with the CI flags"
            );
            std::process::exit(2);
        }
        Err(DiffError::Malformed(why)) => {
            eprintln!("bench_diff: {why}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(s: &str) -> Json {
        parse(s).expect("test json parses")
    }

    const BASE: &str = r#"{"n": 100, "reps": 2, "results": [
        {"strategy": "block-CAS-32", "pattern": "stream", "cached_ns_per_apply": 2.0, "note": "x"},
        {"strategy": "keeper", "threads": 2, "steady_secs": 1.0e-3}
    ]}"#;

    #[test]
    fn within_slack_passes() {
        let cand = r#"{"n": 100, "reps": 2, "results": [
            {"strategy": "block-CAS-32", "pattern": "stream", "cached_ns_per_apply": 2.2, "note": "x"},
            {"strategy": "keeper", "threads": 2, "steady_secs": 1.1e-3}
        ]}"#;
        let rows = diff(&j(BASE), &j(cand), 25.0).ok().expect("comparable");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.regressed));
    }

    #[test]
    fn beyond_slack_regresses() {
        let cand = r#"{"n": 100, "reps": 2, "results": [
            {"strategy": "block-CAS-32", "pattern": "stream", "cached_ns_per_apply": 3.1, "note": "x"},
            {"strategy": "keeper", "threads": 2, "steady_secs": 2.0e-3}
        ]}"#;
        let rows = diff(&j(BASE), &j(cand), 25.0).ok().expect("comparable");
        assert_eq!(rows.iter().filter(|r| r.regressed).count(), 2);
    }

    #[test]
    fn floor_absorbs_micro_jitter() {
        // 10 µs -> 55 µs is a 450% "regression" but sits under the 50 µs
        // floor that keeps smoke-sized runs from flapping.
        let base = r#"{"results": [{"s": "a", "t_secs": 1.0e-5}]}"#;
        let cand = r#"{"results": [{"s": "a", "t_secs": 5.5e-5}]}"#;
        let rows = diff(&j(base), &j(cand), 25.0).ok().expect("comparable");
        assert!(!rows[0].regressed);
    }

    #[test]
    fn improvements_never_fail() {
        let cand = r#"{"n": 100, "reps": 2, "results": [
            {"strategy": "block-CAS-32", "pattern": "stream", "cached_ns_per_apply": 0.5, "note": "x"},
            {"strategy": "keeper", "threads": 2, "steady_secs": 1.0e-6}
        ]}"#;
        let rows = diff(&j(BASE), &j(cand), 25.0).ok().expect("comparable");
        assert!(rows.iter().all(|r| !r.regressed));
    }

    #[test]
    fn config_drift_is_incomparable() {
        let cand = r#"{"n": 200, "reps": 2, "results": []}"#;
        assert!(matches!(
            diff(&j(BASE), &j(cand), 25.0),
            Err(DiffError::Incomparable(_))
        ));
    }

    #[test]
    fn missing_row_is_malformed() {
        let cand = r#"{"n": 100, "reps": 2, "results": [
            {"strategy": "block-CAS-32", "pattern": "stream", "cached_ns_per_apply": 2.0, "note": "x"}
        ]}"#;
        assert!(matches!(
            diff(&j(BASE), &j(cand), 25.0),
            Err(DiffError::Malformed(_))
        ));
    }

    #[test]
    fn non_timing_fields_are_ignored() {
        let base = r#"{"results": [{"s": "a", "break_even_regions": 3, "planned_regions": 5}]}"#;
        let cand = r#"{"results": [{"s": "a", "break_even_regions": 99, "planned_regions": 1}]}"#;
        let rows = diff(&j(base), &j(cand), 25.0).ok().expect("comparable");
        assert!(rows.is_empty());
    }
}
