//! Interleaved-vs-local placement A/B on an emulated NUMA topology.
//!
//! The pool runs 4 threads on an emulated 2x2 topology (two nodes of
//! two cores — `SPRAY_TOPOLOGY=2x2` semantics, pinned in code so the
//! bench is host-independent). Two legs run the same update volume
//! through the keeper strategy:
//!
//! * `local` — every thread scatters into its own node's output shard,
//!   so every apply lands in node-local private state and
//!   `remote_applies` stays zero;
//! * `interleaved` — the index stream is rotated by half the array, so
//!   (almost) every apply targets the *other* node's shard and rides a
//!   keeper queue across the node boundary.
//!
//! The gap between the legs is the cost of cross-node routing — the
//! traffic the topology-aware sharding exists to avoid, and the signal
//! (`remote_applies / applies`) the adaptive cost model's remote term
//! steers on. Both legs report `remote_applies` and `node_shards`
//! straight from the region's [`RunReport`](spray::RunReport).
//!
//! Prints CSV and writes `BENCH_numa_shift.json`. With `--check`, exits
//! nonzero unless the local leg is at least 1.3x the interleaved leg's
//! throughput, the interleaved leg reports `remote_applies > 0`
//! (otherwise the A/B lost its teeth), and the local leg reports
//! exactly zero.

use bench::args::Opts;
use ompsim::{Schedule, ThreadPool, Topology};
use spray::{JsonWriter, Kernel, ReducerView, RegionExecutor, Strategy, Sum};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Scatter whose placement is dialed by `rotate`: iteration `i` targets
/// `(i / per_elem + rotate) % n`. With `rotate = 0` the static schedule
/// maps each thread's iteration chunk onto its own output chunk
/// (node-local by construction); with `rotate = n/2` every index lands
/// in the opposite node's shard.
struct PlacedKernel {
    n: usize,
    per_elem: usize,
    rotate: usize,
}

impl Kernel<i64> for PlacedKernel {
    #[inline(always)]
    fn item<V: ReducerView<i64>>(&self, view: &mut V, i: usize) {
        view.apply((i / self.per_elem + self.rotate) % self.n, black_box(1));
    }
}

/// One measured leg.
struct Row {
    leg: &'static str,
    threads: usize,
    secs: f64,
    updates_per_sec: f64,
    remote_applies: u64,
    node_shards: u64,
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 14 } else { 1 << 17 });
    let per_elem = 16usize;
    let updates = n * per_elem;
    let threads = 4usize;
    let topo = Topology::new(2, 2);
    let pool = ThreadPool::with_topology(threads, topo);

    println!("# numa_shift: node-local vs interleaved placement, keeper strategy");
    println!(
        "# N = {n}, updates = {updates}, threads = {threads}, topology = 2x2 (emulated), \
         reps = {}",
        opts.reps
    );
    println!("leg,threads,secs,updates_per_sec,remote_applies,node_shards");

    let legs: [(&'static str, usize); 2] = [("local", 0), ("interleaved", n / 2)];
    let mut best = [f64::INFINITY; 2];
    let mut telemetry = [(0u64, 0u64); 2];
    let mut out = vec![0i64; n];
    // Rep-outer so runner noise decorrelates from the leg; report min.
    for _ in 0..opts.reps {
        for (li, &(_, rotate)) in legs.iter().enumerate() {
            let kernel = PlacedKernel {
                n,
                per_elem,
                rotate,
            };
            let mut ex = RegionExecutor::<i64, Sum>::new(Strategy::Keeper);
            out.fill(0);
            let t0 = Instant::now();
            let report = ex.run(&pool, &mut out, 0..updates, Schedule::default(), &kernel);
            best[li] = best[li].min(t0.elapsed().as_secs_f64());
            telemetry[li] = (report.remote_applies, report.node_shards);
            // Placement must never change results: every apply adds 1.
            assert_eq!(out.iter().sum::<i64>(), updates as i64);
            black_box(&out);
        }
    }

    let rows: Vec<Row> = legs
        .iter()
        .enumerate()
        .map(|(li, &(leg, _))| Row {
            leg,
            threads,
            secs: best[li],
            updates_per_sec: updates as f64 / best[li],
            remote_applies: telemetry[li].0,
            node_shards: telemetry[li].1,
        })
        .collect();
    for r in &rows {
        println!(
            "{},{},{:.6e},{:.6e},{},{}",
            r.leg, r.threads, r.secs, r.updates_per_sec, r.remote_applies, r.node_shards
        );
    }

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_u64("n", n as u64)
        .field_u64("updates", updates as u64)
        .field_u64("threads", threads as u64)
        .field_str("topology", "2x2")
        .field_u64("reps", opts.reps as u64);
    w.key("results").begin_arr();
    for r in &rows {
        w.begin_obj()
            .field_str("leg", r.leg)
            .field_u64("threads", r.threads as u64)
            .field_f64("secs", r.secs)
            .field_f64("updates_per_sec", r.updates_per_sec)
            .field_u64("remote_applies", r.remote_applies)
            .field_u64("node_shards", r.node_shards)
            .end_obj();
    }
    w.end_arr().end_obj();
    let path = "BENCH_numa_shift.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(w.finish().as_bytes()))
        .expect("write BENCH_numa_shift.json");
    eprintln!("wrote {path}");

    if opts.check {
        // Gate: local placement must beat interleaved by >= 1.3x — the
        // whole point of node-local sharding — and the interleaved leg
        // must actually have driven cross-node traffic (teeth), while
        // the local leg drove none (the placement really was local).
        let mut bad = 0;
        let (local, inter) = (&rows[0], &rows[1]);
        let ratio = local.updates_per_sec / inter.updates_per_sec;
        if ratio < 1.3 {
            eprintln!(
                "CHECK FAIL: local only {ratio:.2}x interleaved \
                 ({:.3e} vs {:.3e} updates/s, need >= 1.3x)",
                local.updates_per_sec, inter.updates_per_sec
            );
            bad += 1;
        }
        if inter.remote_applies == 0 {
            eprintln!(
                "CHECK FAIL: interleaved leg drove NO cross-node applies — A/B lost its teeth"
            );
            bad += 1;
        }
        if local.remote_applies != 0 {
            eprintln!(
                "CHECK FAIL: local leg crossed nodes {} time(s) — placement is not local",
                local.remote_applies
            );
            bad += 1;
        }
        if bad > 0 {
            eprintln!("numa_shift check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!(
            "numa_shift check: local {ratio:.2}x interleaved, \
             {} cross-node applies in the interleaved leg",
            inter.remote_applies
        );
    }
}
