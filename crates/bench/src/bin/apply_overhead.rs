//! Per-apply overhead of the block reducers' hot path.
//!
//! Measures the cost of one `view.apply(i, v)` for block-private,
//! block-lock and block-CAS under two access patterns (streaming and
//! random-permutation scatter), against two baselines measured in the
//! *same* harness:
//!
//! * `apply_uncached` — the legacy path (full bounds assert + status
//!   lookup + hardware div/mod on every update); the spread against it
//!   is the win the hot-path overhaul buys;
//! * bare `apply` — the fast path without the driver's `CountedView`
//!   wrapper (telemetry off); the spread against the wrapped loop is the
//!   *cost of telemetry*, which the acceptance bar requires to stay
//!   under 5% on the streaming pattern. The wrapper's counter lives in a
//!   register (its address never escapes the loop), so the expected cost
//!   is one add per apply.
//!
//! Prints CSV and writes `BENCH_apply_overhead.json` with all three
//! numbers per configuration.

use bench::args::Opts;
use spray::{
    BlockCasReduction, BlockLockReduction, BlockPrivateReduction, CountedView, ReducerView,
    Reduction, Sum,
};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// One measured configuration.
struct Row {
    strategy: String,
    pattern: &'static str,
    /// Fast path through the driver's counting wrapper (telemetry on).
    cached_ns: f64,
    uncached_ns: f64,
    /// Fast path without the counting wrapper (telemetry off).
    uncounted_ns: f64,
}

/// splitmix64, for a deterministic index permutation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn patterns(n: usize) -> Vec<(&'static str, Vec<usize>)> {
    // Streaming scatter: ascending with a ±1 neighbor touch, the
    // conv-backprop shape the last-block cache is built for.
    let stream: Vec<usize> = (1..n - 1).flat_map(|i| [i - 1, i, i + 1]).collect();
    // Random permutation: every apply switches blocks — worst case for
    // the cache, isolating the shift/mask vs div/mod difference.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = 0xC0FFEE;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    vec![("stream", stream), ("random", perm)]
}

/// Times `reps` single-threaded regions of `red`, timing only the apply
/// loop, and returns best ns/apply for the cached and uncached paths.
macro_rules! bench_flavor {
    ($ctor:ident, $bs:expr, $n:expr, $idx:expr, $reps:expr) => {{
        let mut out = vec![0.0f64; $n];
        let red = $ctor::<f64, Sum>::new(&mut out, 1, $bs);
        let name = red.name();
        let mut cached = f64::INFINITY;
        let mut uncached = f64::INFINITY;
        let mut uncounted = f64::INFINITY;
        for _ in 0..$reps + 1 {
            // Counted region — exactly what the drivers run: the fast
            // path through a `CountedView`, applies credited at the end.
            let mut view = red.view(0);
            let mut counted = CountedView::new(&mut view);
            let t0 = Instant::now();
            for &i in $idx {
                counted.apply(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.record_applies(0, counted.applies());
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            cached = cached.min(dt);

            // Uncached region (legacy assert + status lookup + div/mod).
            let mut view = red.view(0);
            let t0 = Instant::now();
            for &i in $idx {
                view.apply_uncached(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            uncached = uncached.min(dt);

            // Same fast path, no counting wrapper (telemetry off).
            let mut view = red.view(0);
            let t0 = Instant::now();
            for &i in $idx {
                view.apply(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            uncounted = uncounted.min(dt);
        }
        let per = 1e9 / $idx.len() as f64;
        Row {
            strategy: name,
            pattern: "",
            cached_ns: cached * per,
            uncached_ns: uncached * per,
            uncounted_ns: uncounted * per,
        }
    }};
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 16 } else { 1 << 20 });
    let block_size = 1024usize;
    let reps = opts.reps;

    println!(
        "# apply_overhead: per-apply ns, fast path (telemetry on/off) vs legacy uncached path"
    );
    println!("# N = {n}, block_size = {block_size}, reps = {reps}, 1 thread");
    println!(
        "strategy,pattern,cached_ns_per_apply,uncached_ns_per_apply,\
         telemetry_off_ns_per_apply,telemetry_overhead_pct,speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (pattern, idx) in patterns(n) {
        for mut row in [
            bench_flavor!(BlockPrivateReduction, block_size, n, &idx, reps),
            bench_flavor!(BlockLockReduction, block_size, n, &idx, reps),
            bench_flavor!(BlockCasReduction, block_size, n, &idx, reps),
        ] {
            row.pattern = pattern;
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.2},{:.3}",
                row.strategy,
                row.pattern,
                row.cached_ns,
                row.uncached_ns,
                row.uncounted_ns,
                100.0 * (row.cached_ns / row.uncounted_ns - 1.0),
                row.uncached_ns / row.cached_ns
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"block_size\": {block_size},\n  \"reps\": {reps},\n  \"results\": [\n"
    ));
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"pattern\": \"{}\", \
             \"cached_ns_per_apply\": {:.3}, \"uncached_ns_per_apply\": {:.3}, \
             \"telemetry_off_ns_per_apply\": {:.3}, \"telemetry_overhead_pct\": {:.2}}}{}\n",
            r.strategy,
            r.pattern,
            r.cached_ns,
            r.uncached_ns,
            r.uncounted_ns,
            100.0 * (r.cached_ns / r.uncounted_ns - 1.0),
            if k + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_apply_overhead.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_apply_overhead.json");
    eprintln!("wrote {path}");
}
