//! Per-apply overhead of the block reducers' hot path.
//!
//! Measures the cost of one `view.apply(i, v)` for block-private,
//! block-lock and block-CAS under two access patterns (streaming and
//! random-permutation scatter), against two baselines measured in the
//! *same* harness:
//!
//! * `apply_uncached` — the legacy path (full bounds assert + status
//!   lookup + hardware div/mod on every update); the spread against it
//!   is the win the hot-path overhaul buys;
//! * bare `apply` — the fast path without the driver's `CountedView`
//!   wrapper (telemetry off); the spread against the wrapped loop is the
//!   *cost of telemetry*, which the acceptance bar requires to stay
//!   under 5% on the streaming pattern. The wrapper's counter lives in a
//!   register (its address never escapes the loop), so the expected cost
//!   is one add per apply.
//!
//! A second section measures the **merge phase** (what the block
//! epilogues stream after the barrier): the fused `merge_refill_into`
//! kernel against the seed's two-pass equivalent (element-at-a-time
//! scalar merge, then a separate identity refill — exactly what the
//! pre-arena epilogue + `finish` pair did), and a same-buffer `memcpy`
//! as the machine's bandwidth ceiling. A real 4-thread block-private
//! region over the stream shape contributes its
//! `RunReport::merge_bandwidth` for cross-checking. The `--check` gate
//! asserts the fused kernel ≥ 1.5× the seed scalar merge.
//!
//! Prints CSV and writes `BENCH_apply_overhead.json` with all numbers
//! per configuration.

use bench::args::Opts;
use spray::arena::AlignedBuf;
use spray::{
    kernels, reduce_dyn, BlockCasReduction, BlockLockReduction, BlockPrivateReduction, CountedView,
    ReducerView, Reduction, Strategy, Sum,
};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// One measured configuration.
struct Row {
    strategy: String,
    pattern: &'static str,
    /// Fast path through the driver's counting wrapper (telemetry on).
    cached_ns: f64,
    uncached_ns: f64,
    /// Fast path without the counting wrapper (telemetry off).
    uncounted_ns: f64,
}

/// Merge-phase measurement: fused kernel vs seed-shaped scalar two-pass,
/// with a memcpy ceiling and a live region's reported bandwidth.
struct MergeRow {
    threads: usize,
    /// ns per merged element, fused `merge_refill_into` kernel.
    kernel_ns: f64,
    /// ns per merged element, seed shape: scalar merge pass + refill pass.
    scalar_ns: f64,
    /// Bytes/sec of the fused kernel over the merged footprint.
    kernel_bw: f64,
    /// Bytes/sec of the seed-shaped scalar merge.
    scalar_bw: f64,
    /// Same-buffer `memcpy` bandwidth (the streaming ceiling).
    memcpy_bw: f64,
    /// `RunReport::merge_bandwidth` of a real block-private region over
    /// the stream shape at `threads` threads.
    region_bw: f64,
}

/// Times the merge phase the way the block epilogues run it: `threads`
/// private full-array copies merged block-by-block into one output.
/// Copies are re-dirtied outside the timed sections; best-of-reps.
fn bench_merge(n: usize, block_size: usize, threads: usize, reps: usize) -> MergeRow {
    let mut out = AlignedBuf::<f64>::new_identity::<Sum>(n);
    let mut copies: Vec<AlignedBuf<f64>> = (0..threads)
        .map(|_| AlignedBuf::<f64>::new_identity::<Sum>(n))
        .collect();
    let dirty = |copies: &mut Vec<AlignedBuf<f64>>| {
        for c in copies.iter_mut() {
            c.as_mut_slice().fill(1.0);
        }
    };
    let merged_bytes = (threads * n * std::mem::size_of::<f64>()) as f64;

    let mut kernel = f64::INFINITY;
    let mut scalar = f64::INFINITY;
    let mut memcpy = f64::INFINITY;
    for _ in 0..reps + 1 {
        // Fused kernel: one pass merges and refills (what the arena-backed
        // epilogue streams).
        dirty(&mut copies);
        let t0 = Instant::now();
        for c in copies.iter_mut() {
            for lo in (0..n).step_by(block_size) {
                let len = block_size.min(n - lo);
                // SAFETY: disjoint buffers, in-bounds block ranges.
                unsafe {
                    kernels::merge_refill_into::<f64, Sum>(
                        out.as_mut_ptr().add(lo),
                        c.as_mut_ptr().add(lo),
                        len,
                    );
                }
            }
        }
        kernel = kernel.min(t0.elapsed().as_secs_f64());
        black_box(out.as_slice());

        // Seed shape: element-at-a-time merge pass (the old epilogue
        // loop), then a separate refill pass (the old `finish`).
        dirty(&mut copies);
        let t0 = Instant::now();
        for c in copies.iter_mut() {
            for lo in (0..n).step_by(block_size) {
                let len = block_size.min(n - lo);
                // SAFETY: as above.
                unsafe {
                    kernels::merge_into_scalar::<f64, Sum>(
                        out.as_mut_ptr().add(lo),
                        c.as_ptr().add(lo),
                        len,
                    );
                }
            }
            c.as_mut_slice().fill(0.0);
        }
        scalar = scalar.min(t0.elapsed().as_secs_f64());
        black_box(out.as_slice());

        // memcpy ceiling over the same footprint.
        dirty(&mut copies);
        let t0 = Instant::now();
        for c in copies.iter() {
            // SAFETY: disjoint same-length buffers.
            unsafe {
                std::ptr::copy_nonoverlapping(c.as_ptr(), out.as_mut_ptr(), n);
            }
        }
        memcpy = memcpy.min(t0.elapsed().as_secs_f64());
        black_box(out.as_slice());
    }

    // A real region on the stream shape: every thread privatizes its
    // chunk's blocks (block-private never claims), so the epilogue merges
    // ~the whole array once and the report carries the realized
    // bandwidth.
    let pool = ompsim::ThreadPool::new(threads);
    let mut out2 = vec![0.0f64; n];
    let report = reduce_dyn::<f64, Sum>(
        Strategy::BlockPrivate { block_size },
        &pool,
        &mut out2,
        1..n - 1,
        ompsim::Schedule::default(),
        &|v, i| {
            v.apply(i - 1, 0.25);
            v.apply(i, 0.5);
            v.apply(i + 1, 0.25);
        },
    );
    black_box(out2.as_slice());

    let per = 1e9 / (threads * n) as f64;
    MergeRow {
        threads,
        kernel_ns: kernel * per,
        scalar_ns: scalar * per,
        kernel_bw: merged_bytes / kernel,
        scalar_bw: merged_bytes / scalar,
        memcpy_bw: merged_bytes / memcpy,
        region_bw: report.merge_bandwidth,
    }
}

/// splitmix64, for a deterministic index permutation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn patterns(n: usize) -> Vec<(&'static str, Vec<usize>)> {
    // Streaming scatter: ascending with a ±1 neighbor touch, the
    // conv-backprop shape the last-block cache is built for.
    let stream: Vec<usize> = (1..n - 1).flat_map(|i| [i - 1, i, i + 1]).collect();
    // Random permutation: every apply switches blocks — worst case for
    // the cache, isolating the shift/mask vs div/mod difference.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = 0xC0FFEE;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    vec![("stream", stream), ("random", perm)]
}

/// Times `reps` single-threaded regions of `red`, timing only the apply
/// loop, and returns best ns/apply for the cached and uncached paths.
macro_rules! bench_flavor {
    ($ctor:ident, $bs:expr, $n:expr, $idx:expr, $reps:expr) => {{
        let mut out = vec![0.0f64; $n];
        let red = $ctor::<f64, Sum>::new(&mut out, 1, $bs);
        let name = red.name();
        let mut cached = f64::INFINITY;
        let mut uncached = f64::INFINITY;
        let mut uncounted = f64::INFINITY;
        for _ in 0..$reps + 1 {
            // Counted region — exactly what the drivers run: the fast
            // path through a `CountedView`, applies credited at the end.
            let mut view = red.view(0);
            let mut counted = CountedView::new(&mut view);
            let t0 = Instant::now();
            for &i in $idx {
                counted.apply(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.record_applies(0, counted.applies());
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            cached = cached.min(dt);

            // Uncached region (legacy assert + status lookup + div/mod).
            let mut view = red.view(0);
            let t0 = Instant::now();
            for &i in $idx {
                view.apply_uncached(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            uncached = uncached.min(dt);

            // Same fast path, no counting wrapper (telemetry off).
            let mut view = red.view(0);
            let t0 = Instant::now();
            for &i in $idx {
                view.apply(i, black_box(1.0));
            }
            let dt = t0.elapsed().as_secs_f64();
            red.stash(0, view);
            red.epilogue(0);
            red.finish();
            uncounted = uncounted.min(dt);
        }
        let per = 1e9 / $idx.len() as f64;
        Row {
            strategy: name,
            pattern: "",
            cached_ns: cached * per,
            uncached_ns: uncached * per,
            uncounted_ns: uncounted * per,
        }
    }};
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 16 } else { 1 << 20 });
    let block_size = 1024usize;
    let reps = opts.reps;

    println!(
        "# apply_overhead: per-apply ns, fast path (telemetry on/off) vs legacy uncached path"
    );
    println!("# N = {n}, block_size = {block_size}, reps = {reps}, 1 thread");
    println!(
        "strategy,pattern,cached_ns_per_apply,uncached_ns_per_apply,\
         telemetry_off_ns_per_apply,telemetry_overhead_pct,speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (pattern, idx) in patterns(n) {
        for mut row in [
            bench_flavor!(BlockPrivateReduction, block_size, n, &idx, reps),
            bench_flavor!(BlockLockReduction, block_size, n, &idx, reps),
            bench_flavor!(BlockCasReduction, block_size, n, &idx, reps),
        ] {
            row.pattern = pattern;
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.2},{:.3}",
                row.strategy,
                row.pattern,
                row.cached_ns,
                row.uncached_ns,
                row.uncounted_ns,
                100.0 * (row.cached_ns / row.uncounted_ns - 1.0),
                row.uncached_ns / row.cached_ns
            );
            rows.push(row);
        }
    }

    // Merge phase: the stream shape at 4 threads (the acceptance
    // configuration), fused kernel vs seed scalar two-pass vs memcpy.
    let merge_threads = 4;
    let m = bench_merge(n, block_size, merge_threads, reps);
    let speedup = m.scalar_ns / m.kernel_ns;
    println!("# merge phase: stream shape, {merge_threads} threads, bytes/sec");
    println!(
        "merge,kernel_ns_per_elem,scalar_ns_per_elem,kernel_vs_scalar,\
         kernel_bw,scalar_bw,memcpy_bw,region_merge_bandwidth"
    );
    println!(
        "merge,{:.3},{:.3},{:.3},{:.3e},{:.3e},{:.3e},{:.3e}",
        m.kernel_ns, m.scalar_ns, speedup, m.kernel_bw, m.scalar_bw, m.memcpy_bw, m.region_bw
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"block_size\": {block_size},\n  \"reps\": {reps},\n  \"results\": [\n"
    ));
    for r in rows.iter() {
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"pattern\": \"{}\", \
             \"cached_ns_per_apply\": {:.3}, \"uncached_ns_per_apply\": {:.3}, \
             \"telemetry_off_ns_per_apply\": {:.3}, \"telemetry_overhead_pct\": {:.2}}},\n",
            r.strategy,
            r.pattern,
            r.cached_ns,
            r.uncached_ns,
            r.uncounted_ns,
            100.0 * (r.cached_ns / r.uncounted_ns - 1.0),
        ));
    }
    json.push_str(&format!(
        "    {{\"strategy\": \"merge-phase\", \"pattern\": \"stream\", \"threads\": {}, \
         \"kernel_merge_ns_per_apply\": {:.3}, \"scalar_merge_ns_per_apply\": {:.3}, \
         \"kernel_vs_scalar_speedup\": {:.3}, \"merge_bandwidth\": {:.6e}, \
         \"scalar_merge_bandwidth\": {:.6e}, \"memcpy_bandwidth\": {:.6e}, \
         \"region_merge_bandwidth\": {:.6e}}}\n",
        m.threads,
        m.kernel_ns,
        m.scalar_ns,
        speedup,
        m.kernel_bw,
        m.scalar_bw,
        m.memcpy_bw,
        m.region_bw
    ));
    json.push_str("  ]\n}\n");
    let path = "BENCH_apply_overhead.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_apply_overhead.json");
    eprintln!("wrote {path}");

    if opts.check {
        assert!(
            speedup >= 1.5,
            "merge kernel acceptance: fused kernel must be ≥ 1.5× the seed \
             scalar merge on the stream shape (got {speedup:.3}×; kernel \
             {:.3} ns/elem vs scalar {:.3} ns/elem)",
            m.kernel_ns,
            m.scalar_ns
        );
        eprintln!("check ok: fused merge kernel {speedup:.3}× the seed scalar merge");
    }
}
