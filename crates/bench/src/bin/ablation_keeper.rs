//! Ablation (§V-e / §VII) — keeper reduction sensitivity to the match
//! between update indices and the static ownership partition.
//!
//! "The keeper reduction excels if the updated indices on each thread
//! closely match the static ownership structure" — here the same update
//! volume is scattered (a) in place (perfect match), (b) shifted by half
//! the array (every update forwarded), and (c) pseudo-randomly.

use bench::args::Opts;
use bench::{fmt_mib, time_reps};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Kernel, ReducerView, Strategy, Sum};

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

#[derive(Clone, Copy)]
enum Mapping {
    Matched,
    Shifted,
    Scrambled,
}

impl Mapping {
    fn label(&self) -> &'static str {
        match self {
            Mapping::Matched => "matched",
            Mapping::Shifted => "shifted-half",
            Mapping::Scrambled => "scrambled",
        }
    }
}

struct ScatterKernel {
    n: usize,
    mapping: Mapping,
}

impl Kernel<f64> for ScatterKernel {
    #[inline(always)]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, i: usize) {
        let idx = match self.mapping {
            Mapping::Matched => i,
            Mapping::Shifted => (i + self.n / 2) % self.n,
            // Odd multiplier: a bijection modulo any power-of-two-free n
            // is not guaranteed, but collisions just mean heavier traffic.
            Mapping::Scrambled => (i.wrapping_mul(2654435761)) % self.n,
        };
        view.apply(idx, 1.0);
    }
}

fn main() {
    let opts = Opts::parse();
    let n = opts
        .n
        .unwrap_or(if opts.quick { 100_000 } else { 10_000_000 });

    println!("# Keeper ownership ablation, N = {n}, update volume = N per run");
    println!("mapping,strategy,threads,mean_s,mem_overhead_mib");

    let mut out = vec![0.0f64; n];
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for mapping in [Mapping::Matched, Mapping::Shifted, Mapping::Scrambled] {
            let kernel = ScatterKernel { n, mapping };
            for strategy in [Strategy::Keeper, Strategy::BlockCas { block_size: 1024 }] {
                let mut mem = 0usize;
                let t = time_reps(opts.reps, || {
                    out.fill(0.0);
                    let r = reduce_strategy::<f64, Sum, _>(
                        strategy,
                        &pool,
                        &mut out,
                        0..n,
                        Schedule::default(),
                        &kernel,
                    );
                    mem = r.memory_overhead;
                });
                println!(
                    "{},{},{},{:.6},{}",
                    mapping.label(),
                    strategy.label(),
                    threads,
                    t.mean,
                    fmt_mib(mem)
                );
            }
        }
    }
}
