//! Renders a figure-results CSV (from `results/` or a figure binary's
//! stdout) as an ASCII chart.
//!
//! ```sh
//! cargo run -p bench --bin plot_ascii -- results/fig11.csv \
//!     --x threads --y speedup --series strategy
//! ```

use bench::plot::{parse_csv, render};

fn main() {
    let mut path = None;
    let mut x_col = "threads".to_string();
    let mut y_col = "speedup".to_string();
    let mut series_col = "strategy".to_string();
    let mut width = 64usize;
    let mut height = 20usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--x" => x_col = val("--x"),
            "--y" => y_col = val("--y"),
            "--series" => series_col = val("--series"),
            "--width" => width = val("--width").parse().expect("bad --width"),
            "--height" => height = val("--height").parse().expect("bad --height"),
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: plot_ascii <file.csv> [--x COL] [--y COL] [--series COL] \
                     [--width N] [--height N]"
                );
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("need a CSV path (e.g. results/fig11.csv)");
        std::process::exit(2);
    });

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    match parse_csv(&text, &x_col, &y_col, &series_col) {
        Ok(series) => {
            println!("{path}: {y_col} vs {x_col} by {series_col}\n");
            print!("{}", render(&series, width, height));
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    }
}
