//! Density sweep: two-level segmented reducer vs map-based strategies,
//! plus the memory-budget degradation curve.
//!
//! Two sweeps over a seeded scatter kernel that touches an evenly
//! spaced subset of the output array (`density` = touched fraction):
//!
//! * **density** (1e-4 → 1e-1): steady-state region seconds for
//!   `Strategy::Segmented` against the per-thread map reducers
//!   (`map-btree`, `map-hash`) it replaces at the sparse end, with
//!   `block-private` as the dense reference. The segmented reducer
//!   appends `(index, value)` pairs into cache-resident per-block
//!   buckets and merges them once, sequentially, per bucket owner — no
//!   per-update tree or hash probe — so it must win where maps win
//!   today;
//! * **budget** (full plan scratch, halving to zero): steady-state
//!   planned-region seconds for `block-private` under a shrinking
//!   [`PlanBudget`]. Each halving demotes more shared blocks to
//!   lock-striped in-place combining; the curve must degrade smoothly —
//!   a budget knob that falls off a cliff is not a knob.
//!
//! Prints CSV and writes `BENCH_segmented_sweep.json`. With `--check`,
//! exits nonzero when (a) the segmented reducer is not at least 1.5x
//! the best map-based strategy at the sparsest density, or (b) any
//! adjacent budget halving costs more than 2x (plus jitter slack).

use bench::args::Opts;
use ompsim::verify::mix64;
use ompsim::{Schedule, ThreadPool};
use spray::{Kernel, PlanBudget, ReducerView, RegionExecutor, Strategy, Sum};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Scatter over an evenly spaced index subset: iteration `i` applies
/// one update at one of `touched` distinct indices spread `stride`
/// apart, chosen pseudo-randomly per iteration. Every thread hits every
/// touched block, which is the worst case for privatization and the
/// home turf of map- and bucket-based reducers.
struct SubsetScatterKernel {
    touched: usize,
    stride: usize,
    seed: u64,
}

impl Kernel<f64> for SubsetScatterKernel {
    #[inline(always)]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, i: usize) {
        let h = mix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let idx = (h as usize % self.touched) * self.stride;
        view.apply(idx, black_box(1.0));
    }
}

/// Length of one same-block run in [`BlockedScatterKernel`].
const RUN: usize = 64;

/// Blocked scatter with intra-block locality: iterations advance in
/// runs of [`RUN`] consecutive offsets inside a pseudo-randomly chosen
/// block, and every thread ranges over every block — the shape of
/// stencil and element loops whose halo blocks are shared, i.e. the
/// workload region plans (and their budget) exist for. A uniformly
/// random scatter would instead measure the branch predictor on the
/// privatized-vs-demoted status check, which no planned workload hits.
struct BlockedScatterKernel {
    nblocks: usize,
    block_size: usize,
    seed: u64,
}

impl Kernel<f64> for BlockedScatterKernel {
    #[inline(always)]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, i: usize) {
        let h = mix64(self.seed ^ (i / RUN) as u64);
        let b = h as usize % self.nblocks;
        let off = ((h >> 32) as usize + i % RUN) % self.block_size;
        view.apply(b * self.block_size + off, black_box(1.0));
    }
}

/// One measured configuration (either sweep).
struct Row {
    /// "density" or "budget".
    kind: &'static str,
    /// Density label ("1e-4") for the density sweep, budget label
    /// ("full/4", "zero") for the budget sweep.
    point: String,
    strategy: String,
    threads: usize,
    steady_secs: f64,
    /// Plan scratch charged at this point (budget sweep only; the
    /// density sweep reports the reducer's own overhead).
    scratch_bytes: usize,
}

/// Best steady-state per-region time over `reps` fresh executors x
/// `regions` back-to-back regions each (region 0 pays allocation and is
/// skipped; later regions run on retained scratch).
fn steady_unplanned(
    strategy: Strategy,
    pool: &ThreadPool,
    n: usize,
    updates: usize,
    kernel: &SubsetScatterKernel,
    regions: usize,
    reps: usize,
) -> (f64, usize) {
    let mut out = vec![0.0f64; n];
    let mut steady = f64::INFINITY;
    let mut overhead = 0usize;
    for _ in 0..reps {
        let mut ex = RegionExecutor::<f64, Sum>::new(strategy);
        for r in 0..regions {
            out.fill(0.0);
            let t0 = Instant::now();
            let report = ex.run(pool, &mut out, 0..updates, Schedule::default(), kernel);
            let dt = t0.elapsed().as_secs_f64();
            if r >= 1 {
                steady = steady.min(dt);
                overhead = report.scratch_bytes;
            }
        }
        black_box(&out);
    }
    (steady, overhead)
}

/// Best steady-state planned-region time under `budget`: record on
/// region 0, replay the rest, keep the best replay past the first.
#[allow(clippy::too_many_arguments)]
fn steady_planned<K: Kernel<f64>>(
    strategy: Strategy,
    budget: PlanBudget,
    pool: &ThreadPool,
    n: usize,
    updates: usize,
    kernel: &K,
    regions: usize,
    reps: usize,
) -> (f64, usize) {
    let mut out = vec![0.0f64; n];
    let mut steady = f64::INFINITY;
    let mut scratch = 0usize;
    for _ in 0..reps {
        let mut ex = RegionExecutor::<f64, Sum>::new(strategy);
        ex.set_budget(budget);
        for r in 0..regions {
            out.fill(0.0);
            let t0 = Instant::now();
            let report = ex.run_planned(0, pool, &mut out, 0..updates, Schedule::default(), kernel);
            let dt = t0.elapsed().as_secs_f64();
            if r >= 2 {
                steady = steady.min(dt);
                scratch = report.scratch_bytes;
            }
        }
        black_box(&out);
        if std::env::var_os("SEGMENTED_SWEEP_DEBUG").is_some() {
            eprintln!(
                "debug: budget {:?} planned_regions {} plan_build {:.3e}",
                budget,
                ex.planned_regions(),
                ex.plan_build_secs()
            );
        }
    }
    (steady, scratch)
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 14 } else { 1 << 18 });
    let updates = 4 * n;
    let regions = if opts.quick { 4 } else { 8 };
    let block_size = 1024usize.min(n);
    let bucket_bits = Strategy::bucket_bits_for(block_size);
    let densities: [(f64, &str); 4] = [
        (1e-4, "1e-4"),
        (1e-3, "1e-3"),
        (1e-2, "1e-2"),
        (1e-1, "1e-1"),
    ];

    println!("# segmented_sweep: density sweep + budget degradation curve");
    println!(
        "# N = {n}, updates = {updates}, block_size = {block_size}, bucket_bits = {bucket_bits}, \
         regions/run = {regions}, reps = {}",
        opts.reps
    );
    println!("kind,point,strategy,threads,steady_secs,scratch_bytes");

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);

        // Density sweep: segmented vs the map reducers it replaces. The
        // touched-subset floor keeps smoke sizes meaningful: below ~32
        // distinct indices the region degenerates to a hot-scalar
        // microbenchmark (a one-key map is an L1-resident counter), which
        // measures neither the sparse regime nor the reducers. At smoke
        // sizes the floor can clamp adjacent densities to the same
        // subset; full-size runs keep all four points distinct.
        for &(density, label) in &densities {
            let touched = ((n as f64 * density) as usize).max(32.min(n));
            let kernel = SubsetScatterKernel {
                touched,
                stride: n / touched,
                seed: 42,
            };
            let strategies = [
                Strategy::Segmented { bucket_bits },
                Strategy::MapBTree,
                Strategy::MapHash,
                Strategy::BlockPrivate { block_size },
            ];
            for strategy in strategies {
                let (steady, overhead) =
                    steady_unplanned(strategy, &pool, n, updates, &kernel, regions, opts.reps);
                rows.push(Row {
                    kind: "density",
                    point: label.to_string(),
                    strategy: strategy.label(),
                    threads,
                    steady_secs: steady,
                    scratch_bytes: overhead,
                });
            }
        }
    }

    // Budget degradation curve at max thread count, on the blocked
    // shared-scatter shape: every block is shared by every thread, so
    // the full plan privatizes all of them — the largest scratch the
    // halvings can bite into.
    let budget_threads = *opts.threads.iter().max().unwrap();
    {
        let pool = ThreadPool::new(budget_threads);
        let kernel = BlockedScatterKernel {
            nblocks: n / block_size,
            block_size,
            seed: 42,
        };
        let strategy = Strategy::BlockPrivate { block_size };
        // Full scratch first: the unbudgeted plan's footprint anchors
        // the halving ladder.
        let (steady, full_scratch) = steady_planned(
            strategy,
            PlanBudget::UNLIMITED,
            &pool,
            n,
            updates,
            &kernel,
            regions,
            opts.reps,
        );
        rows.push(Row {
            kind: "budget",
            point: "full".to_string(),
            strategy: strategy.label(),
            threads: budget_threads,
            steady_secs: steady,
            scratch_bytes: full_scratch,
        });
        for halvings in 1..=4u32 {
            let cap = full_scratch >> halvings;
            let (steady, scratch) = steady_planned(
                strategy,
                PlanBudget::new(cap),
                &pool,
                n,
                updates,
                &kernel,
                regions,
                opts.reps,
            );
            rows.push(Row {
                kind: "budget",
                point: format!("full/{}", 1usize << halvings),
                strategy: strategy.label(),
                threads: budget_threads,
                steady_secs: steady,
                scratch_bytes: scratch,
            });
        }
        let (steady, scratch) = steady_planned(
            strategy,
            PlanBudget::new(0),
            &pool,
            n,
            updates,
            &kernel,
            regions,
            opts.reps,
        );
        rows.push(Row {
            kind: "budget",
            point: "zero".to_string(),
            strategy: strategy.label(),
            threads: budget_threads,
            steady_secs: steady,
            scratch_bytes: scratch,
        });
    }

    for r in &rows {
        println!(
            "{},{},{},{},{:.6e},{}",
            r.kind, r.point, r.strategy, r.threads, r.steady_secs, r.scratch_bytes
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"updates\": {updates},\n  \"block_size\": {block_size},\n  \
         \"bucket_bits\": {bucket_bits},\n  \"regions_per_run\": {regions},\n  \
         \"reps\": {},\n  \"results\": [\n",
        opts.reps
    ));
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kind\": \"{}\", \"point\": \"{}\", \"strategy\": \"{}\", \
             \"threads\": {}, \"steady_secs\": {:.6e}, \"scratch_bytes\": {}}}{}\n",
            r.kind,
            r.point,
            r.strategy,
            r.threads,
            r.steady_secs,
            r.scratch_bytes,
            if k + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_segmented_sweep.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_segmented_sweep.json");
    eprintln!("wrote {path}");

    if opts.check {
        let mut bad = 0;
        // Gate (a): at the sparsest density the segmented reducer must
        // be at least 1.5x the best map-based strategy — that is its
        // reason to exist. 50 µs absolute slack absorbs scheduler
        // jitter on smoke-sized regions.
        let seg_label = Strategy::Segmented { bucket_bits }.label();
        for &threads in &opts.threads {
            let at = |strategy: &str| {
                rows.iter()
                    .find(|r| {
                        r.kind == "density"
                            && r.point == "1e-4"
                            && r.threads == threads
                            && r.strategy == strategy
                    })
                    .map(|r| r.steady_secs)
                    .expect("density row present")
            };
            let seg = at(&seg_label);
            let best_map = at("map-btree").min(at("map-hash"));
            if seg * 1.5 > best_map + 50e-6 {
                eprintln!(
                    "CHECK FAIL: density 1e-4 @{threads}t: segmented {seg:.3e}s not 1.5x \
                     the best map strategy ({best_map:.3e}s)"
                );
                bad += 1;
            }
        }
        // Gate (b): no budget halving may cost more than 2x the
        // previous point — degradation must be a slope, not a cliff.
        let budget_rows: Vec<&Row> = rows.iter().filter(|r| r.kind == "budget").collect();
        for pair in budget_rows.windows(2) {
            let (loose, tight) = (pair[0], pair[1]);
            let limit = loose.steady_secs * 2.0 + 50e-6;
            if tight.steady_secs > limit {
                eprintln!(
                    "CHECK FAIL: budget {} ({:.3e}s) > 2x budget {} ({:.3e}s): \
                     degradation cliff",
                    tight.point, tight.steady_secs, loose.point, loose.steady_secs
                );
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!("segmented_sweep check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!("segmented_sweep check: sparse win and smooth budget curve hold");
    }
}
