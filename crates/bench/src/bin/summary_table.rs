//! One-screen strategy × workload summary — the table implied by §VII's
//! opening remarks ("We make some general remarks about the performance of
//! SPRAY and OPENMP reductions here"): every strategy against all three
//! paper workloads at one pool width, time and memory side by side.
//!
//! ```sh
//! cargo run --release -p bench --bin summary_table -- --threads 4 --quick
//! ```

use bench::args::Opts;
use bench::workloads::{conv_input, conv_size, s3dkt3m2, stencil};
use bench::{fmt_mib, time_reps};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::Backprop3Kernel;
use spray_lulesh::{run, Domain, ForceScheme, Params};
use spray_sparse::tmv_with_strategy;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let threads = *opts.threads.last().unwrap();
    let pool = ThreadPool::new(threads);

    let conv_n = conv_size(opts.quick, opts.n);
    let inp = conv_input(conv_n);
    let w = stencil();
    let conv_kernel = Backprop3Kernel { inp: &inp, w };
    let mut conv_out = vec![0.0f32; conv_n];

    let a = s3dkt3m2(true); // scaled matrix keeps the summary fast
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64).collect();
    let mut y = vec![0.0f64; a.ncols()];

    let lulesh_nx = if opts.quick { 8 } else { 16 };

    println!("# Strategy summary at {threads} threads (conv N = {conv_n}, spmv {}x{}, lulesh {lulesh_nx}^3)", a.nrows(), a.ncols());
    println!("strategy,conv_s,conv_mem_mib,spmv_s,spmv_mem_mib,lulesh_s,lulesh_mem_mib");

    let mut strategies = Strategy::all(1024);
    if !opts.quick {
        // Maps take minutes at full size; keep them for --quick runs.
        strategies.retain(|s| !matches!(s, Strategy::MapBTree | Strategy::MapHash));
    }

    for strategy in strategies {
        let mut conv_mem = 0usize;
        let conv_t = time_reps(opts.reps, || {
            conv_out.fill(0.0);
            conv_mem = reduce_strategy::<f32, Sum, _>(
                strategy,
                &pool,
                &mut conv_out,
                1..conv_n - 1,
                Schedule::default(),
                &conv_kernel,
            )
            .memory_overhead;
        });

        let mut spmv_mem = 0usize;
        let spmv_t = time_reps(opts.reps, || {
            y.fill(0.0);
            spmv_mem = tmv_with_strategy(strategy, &pool, &a, &x, &mut y).memory_overhead;
        });

        let mut d = Domain::new(lulesh_nx, Params::default());
        let t0 = Instant::now();
        let stats = run(&mut d, &pool, ForceScheme::Spray(strategy), 5);
        let lulesh_s = t0.elapsed().as_secs_f64();

        println!(
            "{},{:.6},{},{:.6},{},{:.4},{}",
            strategy.label(),
            conv_t.mean,
            fmt_mib(conv_mem),
            spmv_t.mean,
            fmt_mib(spmv_mem),
            lulesh_s,
            fmt_mib(stats.memory_overhead)
        );
    }
}
