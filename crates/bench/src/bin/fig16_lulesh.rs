//! Fig. 16 — LULESH proxy: whole-run time and force-scheme memory
//! overhead across thread counts, comparing SPRAY reducers against the
//! domain-specific 8-copy replication scheme and dense reductions.
//!
//! The paper runs LULESH 2.0 at 90³ for 100 iterations on 28 cores; the
//! default here is 30³ × 20 iterations (scaled for a small container;
//! `--n` sets the edge size, `--reps` is reused as the iteration count
//! multiplier ×10). As in the paper, the *entire* run time is reported,
//! so differences between schemes are diluted by the unchanged remainder
//! of the timestep.

use bench::args::Opts;
use bench::fmt_mib;
use ompsim::ThreadPool;
use spray::Strategy;
use spray_lulesh::{run, Domain, ForceScheme, Params};
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let nx = opts.n.unwrap_or(if opts.quick { 10 } else { 30 });
    let iters = if opts.quick { 5 } else { 20 };

    println!(
        "# Fig 16: LULESH proxy, mesh {nx}^3 ({} elements), {iters} iterations",
        nx * nx * nx
    );
    println!("# whole-run wall time (like the paper: includes all unchanged phases)");
    println!("# applies = corner-force contributions routed through spray reducers (0 for non-spray schemes)");
    println!("scheme,threads,elapsed_s,mem_overhead_mib,applies,final_energy");

    // Sequential reference.
    {
        let pool = ThreadPool::new(1);
        let mut d = Domain::new(nx, Params::default());
        let t0 = Instant::now();
        let stats = run(&mut d, &pool, ForceScheme::Seq, iters);
        println!(
            "sequential,1,{:.4},0.00,0,{:.6e}",
            t0.elapsed().as_secs_f64(),
            stats.total_energy
        );
    }

    let schemes: Vec<ForceScheme> = {
        let mut s = vec![ForceScheme::EightCopy];
        for strategy in Strategy::competitive(1024) {
            s.push(ForceScheme::Spray(strategy));
        }
        s
    };

    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for &scheme in &schemes {
            let mut d = Domain::new(nx, Params::default());
            let t0 = Instant::now();
            let stats = run(&mut d, &pool, scheme, iters);
            println!(
                "{},{},{:.4},{},{},{:.6e}",
                scheme.label(),
                threads,
                t0.elapsed().as_secs_f64(),
                fmt_mib(stats.memory_overhead),
                stats.applies,
                stats.total_energy
            );
        }
    }
    eprintln!(
        "# process heap peak: {} MiB",
        fmt_mib(memtrack::peak_bytes())
    );
}
