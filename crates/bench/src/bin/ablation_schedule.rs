//! Ablation (§IV discussion) — effect of the loop schedule and chunk size
//! on SPRAY performance.
//!
//! The paper notes SPRAY works with any schedule but that "a small chunk
//! size would probably lead to decreased data locality and hence poor
//! performance in otherwise well-structured problems"; this sweep makes
//! that claim measurable.

use bench::args::Opts;
use bench::time_reps;
use bench::workloads::{conv_input, conv_size, stencil};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::Backprop3Kernel;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let n = conv_size(opts.quick, opts.n);
    let inp = conv_input(n);
    let w = stencil();
    let kernel = Backprop3Kernel { inp: &inp, w };

    let schedules = [
        Schedule::static_default(),
        Schedule::static_chunked(16),
        Schedule::static_chunked(1024),
        Schedule::static_chunked(65536),
        Schedule::dynamic(16),
        Schedule::dynamic(1024),
        Schedule::dynamic(65536),
        Schedule::guided(64),
    ];
    let strategies = [
        Strategy::BlockCas { block_size: 1024 },
        Strategy::Keeper,
        Strategy::Atomic,
    ];

    println!("# Schedule/chunk ablation on conv back-prop, N = {n}");
    println!("strategy,schedule,threads,mean_s");

    let mut out = vec![0.0f32; n];
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for &strategy in &strategies {
            for &schedule in &schedules {
                let t = time_reps(opts.reps, || {
                    out.fill(0.0);
                    reduce_strategy::<f32, Sum, _>(
                        strategy,
                        &pool,
                        &mut out,
                        1..n - 1,
                        schedule,
                        &kernel,
                    );
                });
                println!(
                    "{},\"{}\",{},{:.6}",
                    strategy.label(),
                    schedule.label(),
                    threads,
                    t.mean
                );
            }
        }
    }
}
