//! Ablation (§IX outlook) — the auto-tuning "generic reducer".
//!
//! The paper's future work asks for a reducer that picks the strategy at
//! run time. This harness runs the conv-backprop workload repeatedly
//! through [`spray::AutoTuner`] and compares its cumulative time against
//! each static strategy choice, reporting the tuner's pick and its regret
//! vs. the best static strategy.

use bench::args::Opts;
use bench::workloads::{conv_input, conv_size, stencil};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, AutoTuner, Strategy, Sum};
use spray_conv::Backprop3Kernel;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let n = conv_size(opts.quick, opts.n);
    let rounds = if opts.quick { 20 } else { 40 };
    let inp = conv_input(n);
    let w = stencil();
    let kernel = Backprop3Kernel { inp: &inp, w };

    println!("# Auto-tuner ablation: {rounds} repeated conv-backprop reductions, N = {n}");
    println!("config,threads,total_s,mean_s,picked");

    let mut out = vec![0.0f32; n];
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);

        // Static strategies: cumulative time over all rounds.
        let mut best_static = f64::INFINITY;
        for &strategy in &Strategy::competitive(1024) {
            let t0 = Instant::now();
            for _ in 0..rounds {
                out.fill(0.0);
                reduce_strategy::<f32, Sum, _>(
                    strategy,
                    &pool,
                    &mut out,
                    1..n - 1,
                    Schedule::default(),
                    &kernel,
                );
            }
            let total = t0.elapsed().as_secs_f64();
            best_static = best_static.min(total);
            println!(
                "static:{},{},{:.6},{:.6},-",
                strategy.label(),
                threads,
                total,
                total / rounds as f64
            );
        }

        // The tuner pays exploration cost early, then exploits.
        let mut tuner = AutoTuner::with_default_candidates(1024);
        let t0 = Instant::now();
        for _ in 0..rounds {
            out.fill(0.0);
            tuner.run::<f32, Sum, _>(&pool, &mut out, 1..n - 1, Schedule::default(), &kernel);
        }
        let total = t0.elapsed().as_secs_f64();
        println!(
            "autotuner,{},{:.6},{:.6},{}",
            threads,
            total,
            total / rounds as f64,
            tuner.best().map(|s| s.label()).unwrap_or_default()
        );
        println!(
            "# autotuner regret vs best static: {:+.1}%",
            (total / best_static - 1.0) * 100.0
        );
    }
}
