//! Reduction-service throughput: batched admission vs the serial path.
//!
//! A burst of same-shape scatter jobs (one `class`, one output length,
//! so every pair is batchable) is pushed through a
//! [`ReductionService`](spray_service::ReductionService) twice per
//! thread count:
//!
//! * **serial** — `batch_window = 1`, inline epilogues, one submitter
//!   that waits for each job before submitting the next: every job pays
//!   its own region fork/join and plan lookup;
//! * **batched** — `batch_window = 8`, pipelined epilogue, two
//!   submitter threads bursting the whole job set: the admission loop
//!   coalesces same-shape jobs into shared regions (one plan, one
//!   fork/join, per-job output views) and overlaps epilogues with the
//!   next batch's apply loop.
//!
//! Per column the report is jobs/sec (best of `--reps`) plus the p99
//! queue wait from each job's [`JobResult`](spray_service::JobResult)
//! and the service's cumulative `batched_regions` counter. Prints CSV
//! and writes `BENCH_service_throughput.json`. With `--check`, exits
//! nonzero if the batched column fails to reach 1.3× the serial
//! jobs/sec at any measured thread count, or if no region actually
//! batched (the column under test silently degraded to serial). The
//! gate is calibrated for team widths ≥ 4, where per-region fork/join
//! is expensive enough that coalescing pays well past the slack (CI
//! runs `--threads 4`); at 2 threads batching still wins, but only
//! single-digit percent.

use bench::args::Opts;
use ompsim::verify::mix64;
use spray::{ExecutorPolicy, JsonWriter, Strategy, Sum};
use spray_service::{Job, JobBody, ReductionService, ServiceConfig};
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Scatter body for job `salt`: iteration `i` bumps a hashed index.
fn scatter_body(n: usize, salt: u64) -> JobBody<'static, i64> {
    Box::new(move |view, i| {
        let h = mix64(salt ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        view.apply((h as usize) % n, 1 + ((h >> 32) % 5) as i64);
    })
}

fn job(n: usize, iters: usize, j: u64) -> Job<'static, i64> {
    Job {
        // Two tenants so the batched column's fair-share rotation is
        // exercised, one class so every job is batchable.
        tenant: j % 2,
        class: 1,
        out: vec![0i64; n],
        iters,
        body: scatter_body(n, mix64(j ^ 0x5EED)),
    }
}

fn config(threads: usize, batch_window: usize, pipeline: bool) -> ServiceConfig {
    ServiceConfig {
        threads,
        strategy: Strategy::BlockCas { block_size: 64 },
        policy: ExecutorPolicy::Fixed,
        schedule: ompsim::Schedule::default(),
        batch_window,
        pipeline,
    }
}

/// One measured column at one thread count.
struct Measured {
    jobs_per_sec: f64,
    p99_wait_secs: f64,
    batched_regions: u64,
}

fn p99(mut waits: Vec<f64>) -> f64 {
    if waits.is_empty() {
        return 0.0;
    }
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    waits[(waits.len() * 99).div_ceil(100).saturating_sub(1)]
}

/// Serial column: submit-wait-submit through a window-1 service, so
/// every job runs as its own region with an inline epilogue.
fn run_serial(threads: usize, njobs: u64, n: usize, iters: usize) -> Measured {
    let svc = ReductionService::<i64, Sum>::new(config(threads, 1, false));
    // Warm the session (scratch arena + recorded plan) outside the timer.
    svc.submit(job(n, iters, u64::MAX)).wait();
    let mut waits = Vec::with_capacity(njobs as usize);
    let t0 = Instant::now();
    for j in 0..njobs {
        let r = svc.submit(job(n, iters, j)).wait();
        waits.push(r.queue_wait.as_secs_f64());
    }
    let dt = t0.elapsed().as_secs_f64();
    Measured {
        jobs_per_sec: njobs as f64 / dt,
        p99_wait_secs: p99(waits),
        batched_regions: svc.shared().batched_regions(),
    }
}

/// Batched column: two submitter threads burst the whole job set into a
/// window-8 pipelined service, then redeem their tickets.
fn run_batched(threads: usize, njobs: u64, n: usize, iters: usize) -> Measured {
    let svc = ReductionService::<i64, Sum>::new(config(threads, 8, true));
    svc.submit(job(n, iters, u64::MAX)).wait();
    let t0 = Instant::now();
    let waits: Vec<f64> = std::thread::scope(|s| {
        let halves: Vec<_> = [0u64, 1]
            .map(|parity| {
                let svc = &svc;
                s.spawn(move || {
                    let tickets: Vec<_> = (0..njobs)
                        .filter(|j| j % 2 == parity)
                        .map(|j| svc.submit(job(n, iters, j)))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().queue_wait.as_secs_f64())
                        .collect::<Vec<_>>()
                })
            })
            .into_iter()
            .collect();
        halves
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect()
    });
    let dt = t0.elapsed().as_secs_f64();
    Measured {
        jobs_per_sec: njobs as f64 / dt,
        p99_wait_secs: p99(waits),
        batched_regions: svc.shared().batched_regions(),
    }
}

struct Row {
    mode: &'static str,
    threads: usize,
    m: Measured,
}

fn main() {
    let opts = Opts::parse();
    // Batching is a small-job throughput tier: it amortizes per-region
    // fork/join and plan lookup across jobs, and pays for that with two
    // extra copies of each job's output (concat seed + scatter-back).
    // The bench therefore holds the per-job shape small — the regime the
    // tier exists for — and scales the *number* of jobs for the full-size
    // run; `--n` raises the per-job shape if you want to watch batching
    // stop paying once regions are big enough to amortize themselves.
    let n = opts.n.unwrap_or(1 << 11);
    let njobs: u64 = if opts.quick { 64 } else { 512 };
    let iters = n / 2;

    println!("# service_throughput: batched vs serial admission, same-shape scatter jobs");
    println!(
        "# n = {n}, jobs = {njobs}, iters/job = {iters}, reps = {}",
        opts.reps
    );
    println!("mode,threads,jobs_per_sec,p99_queue_wait_secs,batched_regions");

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &opts.threads {
        // Best-of-reps, interleaved so runner noise decorrelates from
        // the column under test.
        let mut best: [Option<Measured>; 2] = [None, None];
        for _ in 0..opts.reps {
            for (slot, m) in [
                (0, run_serial(threads, njobs, n, iters)),
                (1, run_batched(threads, njobs, n, iters)),
            ] {
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| m.jobs_per_sec > b.jobs_per_sec)
                {
                    best[slot] = Some(m);
                }
            }
        }
        let [serial, batched] = best;
        rows.push(Row {
            mode: "serial",
            threads,
            m: serial.expect("reps >= 1"),
        });
        rows.push(Row {
            mode: "batched",
            threads,
            m: batched.expect("reps >= 1"),
        });
    }

    for r in &rows {
        println!(
            "{},{},{:.6e},{:.6e},{}",
            r.mode, r.threads, r.m.jobs_per_sec, r.m.p99_wait_secs, r.m.batched_regions
        );
    }

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_u64("n", n as u64)
        .field_u64("jobs", njobs)
        .field_u64("iters_per_job", iters as u64)
        .field_u64("reps", opts.reps as u64);
    w.key("results").begin_arr();
    for r in &rows {
        w.begin_obj()
            .field_str("mode", r.mode)
            .field_u64("threads", r.threads as u64)
            .field_f64("jobs_per_sec", r.m.jobs_per_sec)
            .field_f64("p99_queue_wait_secs", r.m.p99_wait_secs)
            .field_u64("batched_regions", r.m.batched_regions)
            .end_obj();
    }
    w.end_arr().end_obj();
    let path = "BENCH_service_throughput.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(w.finish().as_bytes()))
        .expect("write BENCH_service_throughput.json");
    eprintln!("wrote {path}");

    if opts.check {
        let mut bad = 0;
        for &threads in &opts.threads {
            let cell = |mode: &str| {
                rows.iter()
                    .find(|r| r.mode == mode && r.threads == threads)
                    .unwrap_or_else(|| panic!("missing row {mode}/{threads}t"))
            };
            let (serial, batched) = (cell("serial"), cell("batched"));
            let need = serial.m.jobs_per_sec * 1.3;
            if batched.m.jobs_per_sec < need {
                eprintln!(
                    "CHECK FAIL: batched @{threads}t {:.3e} jobs/s < 1.3x serial \
                     ({:.3e} jobs/s)",
                    batched.m.jobs_per_sec, serial.m.jobs_per_sec
                );
                bad += 1;
            }
            if batched.m.batched_regions == 0 {
                eprintln!("CHECK FAIL: batched column @{threads}t never coalesced a region");
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!("service_throughput check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!("service_throughput check: batched >= 1.3x serial at every thread count");
    }
}
