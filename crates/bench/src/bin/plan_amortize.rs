//! Amortization of region plans: planned vs unplanned region time.
//!
//! For each plannable strategy (the three block flavors and Keeper) on
//! two region shapes —
//!
//! * **stream**: the ±1-neighbor streaming stencil scatter (the
//!   conv-backprop shape), where most blocks are thread-exclusive and a
//!   plan turns privatization into direct writes;
//! * **tmv**: transpose-SpMV on a random CSR matrix (the Fig. 14 shape),
//!   where the plan is spray's answer to MKL's `mkl_sparse_optimize()` —
//!
//! runs the *same* region stream twice through a [`RegionExecutor`]:
//! once unplanned (`run`) and once planned (`run_planned`, region 0
//! recording, the rest replaying), and reports steady-state per-region
//! time for each, the plan-build (inspection) time, and the break-even
//! region count — how many replays repay the inspection. MKL never
//! reports that cost; we always do.
//!
//! Prints CSV and writes `BENCH_plan_amortize.json`. With `--check`,
//! exits nonzero if any planned steady-state is slower than unplanned
//! beyond a fixed slack (CI smoke gate). `--budget-bytes B` caps the
//! plan's shared scratch: blocks that no longer fit are demoted to
//! lock-striped in-place combining, and each row reports the
//! `scratch_bytes` the (possibly demoted) plan actually charges.

use bench::args::Opts;
use ompsim::{Schedule, ThreadPool};
use spray::{Kernel, PlanBudget, ReducerView, RegionExecutor, Strategy, Sum};
use std::hint::black_box;
use std::io::Write;
use std::ops::Range;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Streaming stencil scatter: iteration `i` touches `i-1, i, i+1`.
struct StencilKernel;

impl Kernel<f64> for StencilKernel {
    #[inline(always)]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, i: usize) {
        view.apply(i - 1, black_box(1.0));
        view.apply(i, black_box(1.0));
        view.apply(i + 1, black_box(1.0));
    }
}

/// One measured configuration.
struct Row {
    shape: &'static str,
    strategy: String,
    threads: usize,
    unplanned_steady_secs: f64,
    planned_steady_secs: f64,
    plan_build_secs: f64,
    /// Replays needed to repay the plan-build cost; -1 when the planned
    /// path never wins at this size.
    break_even_regions: i64,
    planned_regions: u64,
    /// Scratch bytes the steady-state plan charges (after any
    /// budget-driven demotions).
    scratch_bytes: usize,
}

fn plannable(block_size: usize) -> Vec<Strategy> {
    vec![
        Strategy::BlockPrivate { block_size },
        Strategy::BlockLock { block_size },
        Strategy::BlockCas { block_size },
        Strategy::Keeper,
    ]
}

/// Runs `regions` identical regions unplanned and planned, `reps` times,
/// returning the best steady-state per-region times (skipping the
/// allocation-paying first region and, for the planned run, the
/// recording region too).
#[allow(clippy::too_many_arguments)]
fn run_config<K: Kernel<f64>>(
    strategy: Strategy,
    pool: &ThreadPool,
    out_len: usize,
    range: Range<usize>,
    kernel: &K,
    regions: usize,
    reps: usize,
    budget: PlanBudget,
) -> Row {
    assert!(regions >= 3, "need a warm-up, a recording and a replay");
    let mut out = vec![0.0f64; out_len];
    let mut unplanned_steady = f64::INFINITY;
    let mut planned_steady = f64::INFINITY;
    let mut plan_build = f64::INFINITY;
    let mut planned_count = 0u64;
    let mut scratch_bytes = 0usize;
    for _ in 0..reps {
        let mut ex = RegionExecutor::<f64, Sum>::new(strategy);
        ex.set_budget(budget);
        for r in 0..regions {
            out.fill(0.0);
            let t0 = Instant::now();
            ex.run(pool, &mut out, range.clone(), Schedule::default(), kernel);
            let dt = t0.elapsed().as_secs_f64();
            if r >= 1 {
                unplanned_steady = unplanned_steady.min(dt);
            }
        }
        black_box(&out);

        let mut ex = RegionExecutor::<f64, Sum>::new(strategy);
        ex.set_budget(budget);
        for r in 0..regions {
            out.fill(0.0);
            let t0 = Instant::now();
            let report = ex.run_planned(
                0,
                pool,
                &mut out,
                range.clone(),
                Schedule::default(),
                kernel,
            );
            let dt = t0.elapsed().as_secs_f64();
            if r >= 2 {
                planned_steady = planned_steady.min(dt);
                scratch_bytes = report.scratch_bytes;
            }
        }
        black_box(&out);
        plan_build = plan_build.min(ex.plan_build_secs());
        planned_count = ex.planned_regions();
    }
    let gain = unplanned_steady - planned_steady;
    let break_even_regions = if gain > 0.0 {
        (plan_build / gain).ceil() as i64
    } else {
        -1
    };
    Row {
        shape: "",
        strategy: strategy.label(),
        threads: pool.num_threads(),
        unplanned_steady_secs: unplanned_steady,
        planned_steady_secs: planned_steady,
        plan_build_secs: plan_build,
        break_even_regions,
        planned_regions: planned_count,
        scratch_bytes,
    }
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 14 } else { 1 << 18 });
    let regions = if opts.quick { 6 } else { 12 };
    let block_size = 1024usize;
    let budget = opts
        .budget_bytes
        .map(PlanBudget::new)
        .unwrap_or(PlanBudget::UNLIMITED);
    let a = spray_sparse::gen::random(n, n, 4 * n, 42);
    let x: Vec<f64> = (0..n)
        .map(|i| ((i % 1013) as f64).mul_add(1e-3, 1.0))
        .collect();

    println!("# plan_amortize: planned vs unplanned steady-state region seconds");
    println!(
        "# N = {n}, block_size = {block_size}, regions/run = {regions}, reps = {}, \
         budget_bytes = {}",
        opts.reps,
        if budget.is_unlimited() {
            "unlimited".to_string()
        } else {
            budget.max_scratch_bytes.to_string()
        }
    );
    println!(
        "shape,strategy,threads,unplanned_steady_secs,planned_steady_secs,\
         plan_build_secs,break_even_regions,planned_regions,scratch_bytes"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for strategy in plannable(block_size) {
            let mut row = run_config(
                strategy,
                &pool,
                n,
                1..n - 1,
                &StencilKernel,
                regions,
                opts.reps,
                budget,
            );
            row.shape = "stream";
            rows.push(row);
            let mut row = run_config(
                strategy,
                &pool,
                n,
                0..a.nrows(),
                &spray_sparse::TmvKernel { a: &a, x: &x },
                regions,
                opts.reps,
                budget,
            );
            row.shape = "tmv";
            rows.push(row);
        }
    }

    for r in &rows {
        println!(
            "{},{},{},{:.6e},{:.6e},{:.6e},{},{},{}",
            r.shape,
            r.strategy,
            r.threads,
            r.unplanned_steady_secs,
            r.planned_steady_secs,
            r.plan_build_secs,
            r.break_even_regions,
            r.planned_regions,
            r.scratch_bytes
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"block_size\": {block_size},\n  \"regions_per_run\": {regions},\n  \
         \"reps\": {},\n  \"budget_bytes\": {},\n  \"results\": [\n",
        opts.reps,
        if budget.is_unlimited() {
            0
        } else {
            budget.max_scratch_bytes
        }
    ));
    for (k, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"strategy\": \"{}\", \"threads\": {}, \
             \"unplanned_steady_secs\": {:.6e}, \"planned_steady_secs\": {:.6e}, \
             \"plan_build_secs\": {:.6e}, \"break_even_regions\": {}, \
             \"planned_regions\": {}, \"scratch_bytes\": {}}}{}\n",
            r.shape,
            r.strategy,
            r.threads,
            r.unplanned_steady_secs,
            r.planned_steady_secs,
            r.plan_build_secs,
            r.break_even_regions,
            r.planned_regions,
            r.scratch_bytes,
            if k + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_plan_amortize.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_plan_amortize.json");
    eprintln!("wrote {path}");

    if opts.check {
        // Gate: a replayed plan must never make steady-state regions
        // slower than unplanned beyond slack (50% relative + 50 µs
        // absolute — smoke sizes jitter, the gate catches regressions
        // that make plans actively harmful, not noise).
        let mut bad = 0;
        for r in &rows {
            let limit = r.unplanned_steady_secs * 1.5 + 50e-6;
            if r.planned_steady_secs > limit {
                eprintln!(
                    "CHECK FAIL: {}/{} @{}t planned {:.3e}s > limit {:.3e}s (unplanned {:.3e}s)",
                    r.shape,
                    r.strategy,
                    r.threads,
                    r.planned_steady_secs,
                    limit,
                    r.unplanned_steady_secs
                );
                bad += 1;
            }
            // Each rep re-records once; every other region must replay
            // cleanly (the index stream is identical region to region).
            if r.planned_regions < (regions - 1) as u64 {
                eprintln!(
                    "CHECK FAIL: {}/{} @{}t only {} planned regions (want >= {})",
                    r.shape,
                    r.strategy,
                    r.threads,
                    r.planned_regions,
                    regions - 1
                );
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!("plan_amortize check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!("plan_amortize check: all configurations within slack");
    }
}
