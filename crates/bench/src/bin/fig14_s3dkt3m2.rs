//! Fig. 14 — transpose-SpMV scalability and memory overhead on the
//! s3dkt3m2 stand-in (narrow-band 90k×90k, ≈1.9M nnz; result vector and
//! dense replicas fit in cache on the paper's machine).
//!
//! Drop in the real matrix by pointing `SPRAY_MTX` at an `.mtx` file.

use bench::args::Opts;
use bench::spmv_fig::run_spmv_figure;
use bench::workloads::s3dkt3m2;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let (a, name) = match std::env::var("SPRAY_MTX") {
        Ok(path) => (
            spray_sparse::mm::read_matrix_market_file(&path)
                .unwrap_or_else(|e| panic!("failed to read {path}: {e}")),
            path,
        ),
        Err(_) => (s3dkt3m2(opts.quick), "s3dkt3m2-like (banded)".to_string()),
    };
    run_spmv_figure("Fig 14", &name, &a, &opts);
}
