//! Fig. 11 — speedup of reduction strategies over the sequential 1-D
//! convolution back-propagation, across thread counts.
//!
//! The paper plots OpenMP's built-in reduction (our `dense`), OpenMP/SPRAY
//! atomics, and selected SPRAY reducers on three compilers; rustc is the
//! single compiler here (see `fig12_optlevels` for the optimization-level
//! axis). Map strategies are included only under `--quick` (the paper drops
//! them as non-competitive after §VII's first cut — reproduce that with a
//! quick run).

use bench::args::Opts;
use bench::workloads::{conv_input, conv_size, stencil};
use bench::{fmt_mib, time_reps};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::Backprop3Kernel;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let n = conv_size(opts.quick, opts.n);
    let inp = conv_input(n);
    let w = stencil();
    let kernel = Backprop3Kernel { inp: &inp, w };

    println!(
        "# Fig 11: 1-D conv back-prop, N = {n} f32, reps = {}",
        opts.reps
    );
    println!("# speedup is vs. the sequential loop (mean times)");
    println!("strategy,threads,mean_s,best_s,speedup,mem_overhead_mib");

    // Sequential baseline (Fig. 9 loop).
    let mut out = vec![0.0f32; n];
    let t_seq = time_reps(opts.reps, || {
        out.fill(0.0);
        spray_conv::backprop3_seq(&mut out, &inp, w);
    });
    println!(
        "sequential,1,{:.6},{:.6},1.000,0.00",
        t_seq.mean, t_seq.best
    );

    let mut strategies = Strategy::competitive(1024);
    if opts.quick {
        strategies.push(Strategy::MapBTree);
        strategies.push(Strategy::MapHash);
    }

    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for &strategy in &strategies {
            let mut mem = 0usize;
            let t = time_reps(opts.reps, || {
                out.fill(0.0);
                let r = reduce_strategy::<f32, Sum, _>(
                    strategy,
                    &pool,
                    &mut out,
                    1..n - 1,
                    Schedule::default(),
                    &kernel,
                );
                mem = r.memory_overhead;
            });
            println!(
                "{},{},{:.6},{:.6},{:.3},{}",
                strategy.label(),
                threads,
                t.mean,
                t.best,
                t_seq.mean / t.mean,
                fmt_mib(mem)
            );
        }
    }
    eprintln!(
        "# process heap peak: {} MiB",
        fmt_mib(memtrack::peak_bytes())
    );
}
