//! Incremental (delta) reduction vs full recompute under streaming churn.
//!
//! The workload keeps a live set of tagged contributions (two per output
//! element) reduced into a `u64` Sum array. Each batch mutates a *churn
//! fraction* of the elements — clustered in a sliding window, the
//! streaming-locality shape delta blocks are built for — by retracting
//! one live contribution per mutated element and pushing a replacement.
//! Two paths produce the post-batch array:
//!
//! * **incremental** — [`spray::RegionExecutor::run_delta`] applies the
//!   batch against the retained result, staging only dirty delta
//!   blocks;
//! * **full recompute** — a planned [`spray::RegionExecutor::run`]
//!   re-scatters every live contribution from scratch (the plan replays
//!   across batches, so the baseline is judged at its steady state).
//!
//! Both must agree **bit-for-bit** (wrapping integer Sum is
//! order-independent), so every timed rep doubles as a correctness
//! check. Large churn fractions cross the dirty-fraction threshold and
//! flip the incremental path to its full-refold fallback — visible in
//! the `mode` column.
//!
//! Prints CSV and writes `BENCH_delta_sweep.json`. With `--check`,
//! exits nonzero unless the incremental path beats full recompute by
//! ≥ 3× at every churn fraction ≤ 1% (the paper-motivated streaming
//! gate), or any rep ever disagrees bit-wise.

use bench::args::Opts;
use ompsim::{Schedule, ThreadPool};
use spray::{DeltaBatch, JsonWriter, Kernel, ReducerView, RegionExecutor, Strategy, Sum};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Replays the full live contribution set: iteration `i` applies
/// contribution `i`. This is what "recompute from scratch" costs.
struct ReplayKernel<'a> {
    items: &'a [(u32, u64)],
}

impl Kernel<u64> for ReplayKernel<'_> {
    #[inline(always)]
    fn item<V: ReducerView<u64>>(&self, view: &mut V, i: usize) {
        let (idx, val) = self.items[i];
        view.apply(idx as usize, black_box(val));
    }
}

/// One measured (churn, threads) cell.
struct Row {
    churn: f64,
    threads: usize,
    batch_edits: usize,
    inc_secs: f64,
    full_secs: f64,
    speedup: f64,
    mode: String,
    dirty_blocks: u64,
    retractions: u64,
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 15 } else { 1 << 18 });
    let per_elem = 2usize;
    let churns = if opts.churn.is_empty() {
        vec![0.0005, 0.001, 0.01, 0.1, 0.5]
    } else {
        opts.churn.clone()
    };
    let strategy = opts
        .strategy
        .unwrap_or(Strategy::BlockCas { block_size: 1024 });

    println!("# delta_sweep: incremental delta batches vs full recompute");
    println!(
        "# N = {n}, live contributions = {}, comparator = {}, reps = {}",
        n * per_elem,
        strategy.label(),
        opts.reps
    );
    println!("churn,threads,batch_edits,inc_secs,full_secs,speedup,mode,dirty_blocks,retractions");

    let mut rows: Vec<Row> = Vec::new();
    let mut mismatches = 0u64;
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for &churn in &churns {
            // Live set: `per_elem` tagged contributions per element.
            let mut items: Vec<(u32, u64, u64)> = (0..n * per_elem)
                .map(|j| {
                    let idx = (j / per_elem) as u32;
                    (idx, j as u64, (j as u64).wrapping_mul(0x9E37) % 1000 + 1)
                })
                .collect();
            let mut next_tag = items.len() as u64;

            let mut delta_out = vec![0u64; n];
            let mut ex = RegionExecutor::<u64, Sum>::new(strategy);
            let mut baseline = DeltaBatch::new();
            for &(idx, tag, val) in &items {
                baseline.push(idx as usize, tag, val);
            }
            ex.run_delta(&pool, &mut delta_out, &baseline);

            let mut full_ex = RegionExecutor::<u64, Sum>::new(strategy);
            let mut full_out = vec![0u64; n];

            let k = ((churn * n as f64).ceil() as usize).clamp(1, n);
            let mut inc_best = f64::INFINITY;
            let mut full_best = f64::INFINITY;
            let mut mode = String::new();
            let mut dirty_blocks = 0u64;
            let mut retractions = 0u64;
            for rep in 0..opts.reps {
                // Clustered churn: a sliding window of k elements, each
                // retracting one live contribution and pushing a fresh one.
                let start = (rep * k * 7) % n;
                let mut batch = DeltaBatch::new();
                for j in 0..k {
                    let e = (start + j) % n;
                    let slot = e * per_elem + rep % per_elem;
                    let (idx, tag, _) = items[slot];
                    batch.retract(idx as usize, tag);
                    let val = (next_tag.wrapping_mul(0x517C) % 1000) + 1;
                    batch.push(idx as usize, next_tag, val);
                    items[slot] = (idx, next_tag, val);
                    next_tag += 1;
                }

                let t0 = Instant::now();
                let report = ex.run_delta(&pool, &mut delta_out, &batch);
                let inc = t0.elapsed().as_secs_f64();
                inc_best = inc_best.min(inc);
                mode = report.strategy.clone();
                dirty_blocks = report.dirty_blocks;
                retractions = report.retractions;

                // Full recompute of the same post-batch live set. The
                // index stream never changes, so the recorded plan
                // replays — the baseline is judged warm.
                let replay: Vec<(u32, u64)> = items.iter().map(|&(i, _, v)| (i, v)).collect();
                let kernel = ReplayKernel { items: &replay };
                full_out.fill(0);
                let t0 = Instant::now();
                full_ex.run_planned(
                    0,
                    &pool,
                    &mut full_out,
                    0..replay.len(),
                    Schedule::default(),
                    &kernel,
                );
                let full = t0.elapsed().as_secs_f64();
                full_best = full_best.min(full);

                if full_out != delta_out {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH: churn {churn} @{threads}t rep {rep}: incremental result \
                         diverged from full recompute"
                    );
                }
            }
            rows.push(Row {
                churn,
                threads,
                batch_edits: 2 * k,
                inc_secs: inc_best,
                full_secs: full_best,
                speedup: full_best / inc_best,
                mode,
                dirty_blocks,
                retractions,
            });
        }
    }

    for r in &rows {
        println!(
            "{},{},{},{:.6e},{:.6e},{:.2},{},{},{}",
            r.churn,
            r.threads,
            r.batch_edits,
            r.inc_secs,
            r.full_secs,
            r.speedup,
            r.mode,
            r.dirty_blocks,
            r.retractions
        );
    }

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_u64("n", n as u64)
        .field_u64("live_contributions", (n * per_elem) as u64)
        .field_str("comparator", &strategy.label())
        .field_u64("reps", opts.reps as u64);
    w.key("results").begin_arr();
    for r in &rows {
        w.begin_obj()
            .field_f64("churn", r.churn)
            .field_u64("threads", r.threads as u64)
            .field_u64("batch_edits", r.batch_edits as u64)
            .field_f64("inc_secs", r.inc_secs)
            .field_f64("full_secs", r.full_secs)
            .field_f64("speedup", r.speedup)
            .field_str("mode", &r.mode)
            .field_u64("dirty_blocks", r.dirty_blocks)
            .field_u64("retractions", r.retractions)
            .end_obj();
    }
    w.end_arr().end_obj();
    let path = "BENCH_delta_sweep.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(w.finish().as_bytes()))
        .expect("write BENCH_delta_sweep.json");
    eprintln!("wrote {path}");

    if opts.check {
        // Gate: bit-identical always, and the incremental path must be
        // worth it — ≥ 3× over warm full recompute at every churn
        // fraction ≤ 1%.
        let mut bad = mismatches;
        for r in &rows {
            if r.churn <= 0.01 && r.speedup < 3.0 {
                eprintln!(
                    "CHECK FAIL: churn {} @{}t speedup {:.2}x < 3x (inc {:.3e}s, full {:.3e}s)",
                    r.churn, r.threads, r.speedup, r.inc_secs, r.full_secs
                );
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!("delta_sweep check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!("delta_sweep check: bit-identical, >=3x at <=1% churn");
    }
}
