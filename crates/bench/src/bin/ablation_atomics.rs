//! Ablation (§III / §V-c) — cost of floating-point CAS-loop atomics vs
//! native integer fetch-add.
//!
//! The paper's motivation for the atomic reducer's caveats: "on a system
//! without explicit support for atomic fetch-and-add operations on
//! floating-point values, the atomic update would most likely be
//! implemented with a CAS loop for which the expected performance is
//! substantially lower." We measure the same histogram workload with
//! `u64` (fetch_add), `f64` (CAS loop) and `f32` (CAS loop), at low and
//! high contention.

use bench::args::Opts;
use bench::time_reps;
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Kernel, ReducerView, Strategy};

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

struct HistKernel {
    bins: usize,
}

macro_rules! impl_hist {
    ($t:ty, $one:expr) => {
        impl Kernel<$t> for HistKernel {
            #[inline(always)]
            fn item<V: ReducerView<$t>>(&self, view: &mut V, i: usize) {
                view.apply((i.wrapping_mul(2654435761)) % self.bins, $one);
            }
        }
    };
}
impl_hist!(u64, 1);
impl_hist!(f64, 1.0);
impl_hist!(f32, 1.0);

fn main() {
    let opts = Opts::parse();
    let updates = opts
        .n
        .unwrap_or(if opts.quick { 1_000_000 } else { 50_000_000 });

    println!("# Atomic-op ablation: histogram of {updates} updates");
    println!("# contention = few bins (hot cache lines) vs many bins");
    println!("elem_type,atomic_op,bins,threads,mean_s,updates_per_s");

    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        for &bins in &[64usize, 1 << 20] {
            let kernel = HistKernel { bins };

            let mut out_u = vec![0u64; bins];
            let t = time_reps(opts.reps, || {
                out_u.fill(0);
                reduce_strategy::<u64, spray::Sum, _>(
                    Strategy::Atomic,
                    &pool,
                    &mut out_u,
                    0..updates,
                    Schedule::default(),
                    &kernel,
                );
            });
            println!(
                "u64,fetch_add,{bins},{threads},{:.6},{:.3e}",
                t.mean,
                updates as f64 / t.mean
            );

            let mut out_f = vec![0.0f64; bins];
            let t = time_reps(opts.reps, || {
                out_f.fill(0.0);
                reduce_strategy::<f64, spray::Sum, _>(
                    Strategy::Atomic,
                    &pool,
                    &mut out_f,
                    0..updates,
                    Schedule::default(),
                    &kernel,
                );
            });
            println!(
                "f64,cas_loop,{bins},{threads},{:.6},{:.3e}",
                t.mean,
                updates as f64 / t.mean
            );

            let mut out_f32 = vec![0.0f32; bins];
            let t = time_reps(opts.reps, || {
                out_f32.fill(0.0);
                reduce_strategy::<f32, spray::Sum, _>(
                    Strategy::Atomic,
                    &pool,
                    &mut out_f32,
                    0..updates,
                    Schedule::default(),
                    &kernel,
                );
            });
            println!(
                "f32,cas_loop,{bins},{threads},{:.6},{:.3e}",
                t.mean,
                updates as f64 / t.mean
            );
        }
    }
}
