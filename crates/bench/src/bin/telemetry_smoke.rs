//! Telemetry smoke test (run by CI).
//!
//! Runs one scatter reduction under each strategy family — block, keeper,
//! atomic, map — plus dense, log and hybrid, prints every `RunReport` as
//! JSON, then re-parses each document with `bench::json` and asserts the
//! pipeline end to end:
//!
//! * the JSON parses and carries all four report sections,
//! * counter totals show the applies actually issued,
//! * per-phase wall times are present and the region time is nonzero,
//! * the reduction result itself is correct.
//!
//! Exits nonzero on any violation, so a strategy that silently stops
//! reporting (or a `to_json` drift the reader can't handle) fails the
//! build rather than producing empty dashboards.

use bench::json::{parse, Json};
use spray::{reduce_dyn, Strategy, Sum};

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn check(doc: &Json, strategy: Strategy, expected_applies: f64) {
    let label = strategy.label();
    let name = doc
        .get("strategy")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{label}: report lacks a strategy name"));
    assert!(!name.is_empty(), "{label}: empty strategy name");

    let totals = doc
        .get("counters")
        .and_then(|c| c.get("totals"))
        .unwrap_or_else(|| panic!("{label}: report lacks counter totals"));
    let applies = totals.get("applies").and_then(Json::as_num).unwrap();
    assert_eq!(
        applies, expected_applies,
        "{label}: applies {applies} != updates issued {expected_applies}"
    );

    let per_thread = doc
        .get("counters")
        .and_then(|c| c.get("per_thread"))
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{label}: report lacks per-thread counters"));
    assert!(!per_thread.is_empty(), "{label}: no per-thread slots");

    let phases = doc
        .get("phases")
        .unwrap_or_else(|| panic!("{label}: report lacks phases"));
    for key in [
        "loop_secs",
        "barrier_secs",
        "epilogue_secs",
        "finish_secs",
        "region_secs",
    ] {
        let v = phases
            .get(key)
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("{label}: phases lack {key}"));
        assert!(v >= 0.0, "{label}: negative {key}");
    }
    let region = phases.get("region_secs").and_then(Json::as_num).unwrap();
    assert!(region > 0.0, "{label}: zero region time");

    assert!(
        doc.get("memory_overhead").and_then(Json::as_num).is_some(),
        "{label}: report lacks memory_overhead"
    );

    for key in ["plan_build_secs", "planned_regions"] {
        let v = doc
            .get(key)
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("{label}: report lacks {key}"));
        assert!(v >= 0.0, "{label}: negative {key}");
    }
}

fn main() {
    let threads = 4;
    let pool = ompsim::ThreadPool::new(threads);
    let n = 10_000usize;
    let updates = 100_000usize;

    // One representative per strategy family, plus the extras.
    let strategies = [
        Strategy::BlockCas { block_size: 64 },
        Strategy::BlockLock { block_size: 64 },
        Strategy::BlockPrivate { block_size: 64 },
        Strategy::Keeper,
        Strategy::Atomic,
        Strategy::MapBTree,
        Strategy::MapHash,
        Strategy::Dense,
        Strategy::Log,
        Strategy::Hybrid {
            block_size: 64,
            threshold: 4,
        },
    ];

    let mut ok = 0;
    for strategy in strategies {
        let mut out = vec![0i64; n];
        let report = reduce_dyn::<i64, Sum>(
            strategy,
            &pool,
            &mut out,
            0..updates,
            ompsim::Schedule::default(),
            &|v, i| v.apply((i * 7919) % n, 1),
        );
        assert_eq!(
            out.iter().sum::<i64>(),
            updates as i64,
            "{}: wrong reduction result",
            strategy.label()
        );

        let text = report.to_json();
        println!("{text}");
        let doc = parse(&text)
            .unwrap_or_else(|e| panic!("{}: report does not parse: {e}", strategy.label()));
        check(&doc, strategy, updates as f64);
        ok += 1;
    }
    eprintln!(
        "telemetry_smoke: {ok}/{} strategies reported and parsed",
        strategies.len()
    );

    // Planned-region pipeline: a recording region then a replay through
    // the same executor must report the replay in `planned_regions`, and
    // the fields must survive the JSON round trip.
    let mut ex = spray::RegionExecutor::<i64, Sum>::new(Strategy::BlockCas { block_size: 64 });
    struct ScatterKernel {
        n: usize,
    }
    impl spray::Kernel<i64> for ScatterKernel {
        fn item<V: spray::ReducerView<i64>>(&self, view: &mut V, i: usize) {
            view.apply((i * 7919) % self.n, 1);
        }
    }
    let k = ScatterKernel { n };
    let mut replay = None;
    for _ in 0..2 {
        let mut out = vec![0i64; n];
        let report = ex.run_planned(
            0,
            &pool,
            &mut out,
            0..updates,
            ompsim::Schedule::default(),
            &k,
        );
        assert_eq!(
            out.iter().sum::<i64>(),
            updates as i64,
            "planned: wrong result"
        );
        replay = Some(report);
    }
    let replay = replay.unwrap();
    assert_eq!(replay.planned_regions, 1, "replay not counted as planned");
    assert!(replay.plan_build_secs > 0.0, "plan build time not recorded");
    let doc = parse(&replay.to_json()).expect("planned report does not parse");
    assert_eq!(
        doc.get("planned_regions").and_then(Json::as_num),
        Some(1.0),
        "planned_regions lost in JSON round trip"
    );
    eprintln!("telemetry_smoke: planned-region fields round-trip");
}
