//! Adaptive strategy migration on a workload whose density shifts.
//!
//! The region stream is front-loaded dense (≈16 applies per output
//! element — block privatization territory) and then drops to a sparse
//! tail (≈1/16 applies per element — atomic territory). Three executors
//! run the same stream:
//!
//! * fixed block-private (right for the head, wrong for the tail);
//! * fixed atomic (wrong for the head, right for the tail);
//! * adaptive, starting block-private with the default candidate set —
//!   the cost model must notice the density shift and migrate.
//!
//! Per phase the report is the best steady-state region time (min over
//! the later regions of the phase, min over reps), so the adaptive
//! executor is judged on where it *settles*, not on the patience regions
//! it spends deciding. The adaptive row also reports `migrations`,
//! `migration_secs` and the per-strategy region counts from the
//! executor's telemetry.
//!
//! The bench pins the cost model to density signals only
//! (`contention_limit`/`barrier_limit` zero) so the migration sequence
//! is a pure function of the workload, not of scheduler noise — the
//! same determinism envelope the verify oracle uses.
//!
//! Prints CSV and writes `BENCH_adaptive_shift.json`. With `--check`,
//! exits nonzero if the adaptive executor never migrated or its
//! steady-state trails the best fixed executor beyond a generous smoke
//! slack on either phase.

use bench::args::Opts;
use ompsim::{Schedule, ThreadPool};
use spray::{
    default_candidates, AdaptiveConfig, ExecutorPolicy, JsonWriter, Kernel, ReducerView,
    RegionExecutor, Strategy, Sum,
};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

/// Scatter with a data-dependent index stream: iteration `i` touches
/// `(i·7919 + salt) mod n`, one apply per iteration — density is dialed
/// purely by the iteration count.
struct ShiftKernel {
    n: usize,
    salt: usize,
}

impl Kernel<f64> for ShiftKernel {
    #[inline(always)]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, i: usize) {
        view.apply((i * 7919 + self.salt) % self.n, black_box(1.0));
    }
}

/// One measured (executor, phase) cell.
struct Row {
    executor: String,
    phase: &'static str,
    threads: usize,
    steady_secs: f64,
    migrations: u64,
    migration_secs: f64,
    strategy_regions: Vec<(String, u64)>,
}

/// Workload shape shared by every executor under test.
#[derive(Clone, Copy)]
struct Shape {
    n: usize,
    dense_updates: usize,
    sparse_updates: usize,
    phase_regions: usize,
}

/// Runs the dense→sparse region stream once through a fresh executor,
/// returning (dense steady, sparse steady, the executor). The caller
/// interleaves these passes across the executors under test so that a
/// burst of background load on a shared runner lands on every
/// configuration, not entirely on whichever one happened to be running
/// its contiguous block of reps.
fn run_pass(
    strategy: Strategy,
    policy: Option<&ExecutorPolicy>,
    pool: &ThreadPool,
    shape: Shape,
    out: &mut [f64],
) -> (f64, f64, RegionExecutor<f64, Sum>) {
    let Shape {
        n,
        dense_updates,
        sparse_updates,
        phase_regions,
    } = shape;
    let steady_window = (phase_regions / 2).max(1);
    let mut dense_steady = f64::INFINITY;
    let mut sparse_steady = f64::INFINITY;
    let mut ex = match policy {
        Some(p) => RegionExecutor::<f64, Sum>::with_policy(strategy, p.clone()),
        None => RegionExecutor::<f64, Sum>::new(strategy),
    };
    for (phase, updates, steady) in [
        (0u64, dense_updates, &mut dense_steady),
        (1u64, sparse_updates, &mut sparse_steady),
    ] {
        let kernel = ShiftKernel {
            n,
            salt: phase as usize,
        };
        for r in 0..phase_regions {
            out.fill(0.0);
            let t0 = Instant::now();
            ex.run_planned(phase, pool, out, 0..updates, Schedule::default(), &kernel);
            let dt = t0.elapsed().as_secs_f64();
            // Judge each executor on where it settles: the later
            // regions, after scratch warm-up, plan recording and (for
            // the adaptive run) the patience + migration regions.
            if r >= phase_regions - steady_window {
                *steady = steady.min(dt);
            }
        }
        black_box(&out);
    }
    (dense_steady, sparse_steady, ex)
}

fn main() {
    let opts = Opts::parse();
    let n = opts.n.unwrap_or(if opts.quick { 1 << 14 } else { 1 << 18 });
    let phase_regions = if opts.quick { 6 } else { 10 };
    let block_size = 1024usize;
    let dense_updates = n * 16;
    let sparse_updates = (n / 16).max(1);
    // Density-only cost model (see module docs); patience 2 keeps most of
    // the sparse tail on the migrated strategy.
    let adaptive_cfg = AdaptiveConfig {
        candidates: default_candidates(block_size),
        patience: 2,
        contention_limit: 0.0,
        barrier_limit: 0.0,
        ..AdaptiveConfig::default()
    };
    let start = Strategy::BlockPrivate { block_size };
    let configs: Vec<(Strategy, Option<ExecutorPolicy>)> = vec![
        (start, None),
        (Strategy::Atomic, None),
        (start, Some(ExecutorPolicy::Adaptive(adaptive_cfg))),
    ];

    println!("# adaptive_shift: dense front-loaded stream with a sparse tail");
    println!(
        "# N = {n}, block_size = {block_size}, regions/phase = {phase_regions}, \
         dense = {dense_updates} updates, sparse = {sparse_updates} updates, reps = {}",
        opts.reps
    );
    println!("executor,phase,threads,steady_secs,migrations,migration_secs,strategy_regions");

    let shape = Shape {
        n,
        dense_updates,
        sparse_updates,
        phase_regions,
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut out = vec![0.0f64; n];
    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);
        // Interleave reps across the executors (rep-outer) so runner
        // noise decorrelates from the configuration; report the min.
        let mut dense_best = vec![f64::INFINITY; configs.len()];
        let mut sparse_best = vec![f64::INFINITY; configs.len()];
        let mut final_ex: Vec<Option<RegionExecutor<f64, Sum>>> =
            configs.iter().map(|_| None).collect();
        for _ in 0..opts.reps {
            for (ci, (strategy, policy)) in configs.iter().enumerate() {
                let (dense, sparse, ex) =
                    run_pass(*strategy, policy.as_ref(), &pool, shape, &mut out);
                dense_best[ci] = dense_best[ci].min(dense);
                sparse_best[ci] = sparse_best[ci].min(sparse);
                final_ex[ci] = Some(ex);
            }
        }
        for (ci, (strategy, policy)) in configs.iter().enumerate() {
            let ex = final_ex[ci].take().expect("reps >= 1");
            let executor = match policy {
                Some(_) => "adaptive".to_string(),
                None => strategy.label(),
            };
            for (phase, steady) in [("dense", dense_best[ci]), ("sparse", sparse_best[ci])] {
                rows.push(Row {
                    executor: executor.clone(),
                    phase,
                    threads,
                    steady_secs: steady,
                    migrations: ex.migrations(),
                    migration_secs: ex.migration_secs(),
                    strategy_regions: ex.strategy_regions().to_vec(),
                });
            }
        }
    }

    for r in &rows {
        let regions: Vec<String> = r
            .strategy_regions
            .iter()
            .map(|(l, c)| format!("{l}:{c}"))
            .collect();
        println!(
            "{},{},{},{:.6e},{},{:.6e},{}",
            r.executor,
            r.phase,
            r.threads,
            r.steady_secs,
            r.migrations,
            r.migration_secs,
            regions.join("|")
        );
    }

    let mut w = JsonWriter::new();
    w.begin_obj()
        .field_u64("n", n as u64)
        .field_u64("block_size", block_size as u64)
        .field_u64("regions_per_phase", phase_regions as u64)
        .field_u64("dense_updates", dense_updates as u64)
        .field_u64("sparse_updates", sparse_updates as u64)
        .field_u64("reps", opts.reps as u64);
    w.key("results").begin_arr();
    for r in &rows {
        w.begin_obj()
            .field_str("executor", &r.executor)
            .field_str("phase", r.phase)
            .field_u64("threads", r.threads as u64)
            .field_f64("steady_secs", r.steady_secs)
            .field_u64("migrations", r.migrations)
            .field_f64("migration_secs", r.migration_secs);
        w.key("strategy_regions").begin_obj();
        for (label, count) in &r.strategy_regions {
            w.field_u64(label, *count);
        }
        w.end_obj().end_obj();
    }
    w.end_arr().end_obj();
    let path = "BENCH_adaptive_shift.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(w.finish().as_bytes()))
        .expect("write BENCH_adaptive_shift.json");
    eprintln!("wrote {path}");

    if opts.check {
        // Gate: the adaptive executor must actually migrate, and its
        // steady state must not trail the best fixed executor beyond
        // slack on either phase (2x relative + 50 µs absolute — smoke
        // sizes jitter on loaded runners, and the wrong-strategy
        // penalty this guards against is 5-8x; the tight 5% claim is
        // for the committed full-size artifact, not the CI gate).
        let mut bad = 0;
        for &threads in &opts.threads {
            for phase in ["dense", "sparse"] {
                let cell = |name: &str| {
                    rows.iter()
                        .find(|r| r.executor == name && r.phase == phase && r.threads == threads)
                        .unwrap_or_else(|| panic!("missing row {name}/{phase}/{threads}t"))
                };
                let adaptive = cell("adaptive");
                let best_fixed = rows
                    .iter()
                    .filter(|r| {
                        r.executor != "adaptive" && r.phase == phase && r.threads == threads
                    })
                    .map(|r| r.steady_secs)
                    .fold(f64::INFINITY, f64::min);
                let limit = best_fixed * 2.0 + 50e-6;
                if adaptive.steady_secs > limit {
                    eprintln!(
                        "CHECK FAIL: adaptive {phase} @{threads}t {:.3e}s > limit {:.3e}s \
                         (best fixed {best_fixed:.3e}s)",
                        adaptive.steady_secs, limit
                    );
                    bad += 1;
                }
                if adaptive.migrations < 1 {
                    eprintln!("CHECK FAIL: adaptive @{threads}t never migrated");
                    bad += 1;
                }
            }
        }
        if bad > 0 {
            eprintln!("adaptive_shift check: {bad} failure(s)");
            std::process::exit(1);
        }
        eprintln!("adaptive_shift check: all configurations within slack");
    }
}
