//! Fig. 15 — transpose-SpMV scalability and memory overhead on the debr
//! stand-in (a 2²⁰-node de Bruijn graph, ≈4.2M nnz, global bandwidth:
//! nothing stays in cache, which is what lets atomics overtake block-lock
//! at the paper's highest thread counts).
//!
//! Drop in the real matrix by pointing `SPRAY_MTX` at an `.mtx` file.

use bench::args::Opts;
use bench::spmv_fig::run_spmv_figure;
use bench::workloads::debr;

#[global_allocator]
static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;

fn main() {
    let opts = Opts::parse();
    let (a, name) = match std::env::var("SPRAY_MTX") {
        Ok(path) => (
            spray_sparse::mm::read_matrix_market_file(&path)
                .unwrap_or_else(|e| panic!("failed to read {path}: {e}")),
            path,
        ),
        Err(_) => (debr(opts.quick), "debr-like (de Bruijn)".to_string()),
    };
    run_spmv_figure("Fig 15", &name, &a, &opts);
}
