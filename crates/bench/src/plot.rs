//! Terminal plotting of figure CSVs — renders the series the paper plots
//! as ASCII charts, so results can be eyeballed without leaving the shell.

use std::collections::BTreeMap;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, any order.
    pub points: Vec<(f64, f64)>,
}

/// Parses figure CSV text (`#` comment lines, then a header row) into one
/// series per distinct value of `series_col`, with `x_col`/`y_col` as
/// coordinates. Returns an error string on malformed input.
pub fn parse_csv(
    text: &str,
    x_col: &str,
    y_col: &str,
    series_col: &str,
) -> Result<Vec<Series>, String> {
    let mut lines = text.lines().filter(|l| !l.trim_start().starts_with('#'));
    let header = lines.next().ok_or("empty input")?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let find = |name: &str| {
        cols.iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("column '{name}' not in header {cols:?}"))
    };
    let (xi, yi, si) = (find(x_col)?, find(y_col)?, find(series_col)?);

    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() <= xi.max(yi).max(si) {
            return Err(format!("row {lno}: too few fields: '{line}'"));
        }
        let parse = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|e| format!("row {lno}: bad {what} '{s}': {e}"))
        };
        let x = parse(fields[xi], x_col)?;
        // Allow y fields like "38.15 (…)" by taking the leading token.
        let ytok = fields[yi].split_whitespace().next().unwrap_or("");
        let y = parse(ytok, y_col)?;
        series
            .entry(fields[si].trim_matches('"').to_string())
            .or_default()
            .push((x, y));
    }
    Ok(series
        .into_iter()
        .map(|(name, points)| Series { name, points })
        .collect())
}

/// Glyphs assigned to series, in order.
const GLYPHS: &[u8] = b"*o+x#@%&=~";

/// Renders series as an ASCII chart of the given plot-area size.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "plot area too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![b' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // Later series overwrite on collision; the legend disambiguates.
            grid[row][cx] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let yval = ymax - (ymax - ymin) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:>10.3} |"));
        out.push_str(std::str::from_utf8(row).unwrap());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<w$.3}{:>r$.3}\n",
        "",
        xmin,
        xmax,
        w = width / 2,
        r = width - width / 2
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "   {} {}\n",
            GLYPHS[si % GLYPHS.len()] as char,
            s.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
strategy,threads,mean_s,speedup
dense,1,0.1,1.0
dense,2,0.2,0.5
keeper,1,0.05,2.0
keeper,2,0.06,1.7
";

    #[test]
    fn parse_groups_series() {
        let s = parse_csv(SAMPLE, "threads", "speedup", "strategy").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "dense");
        assert_eq!(s[0].points, vec![(1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(s[1].name, "keeper");
    }

    #[test]
    fn parse_rejects_unknown_column() {
        assert!(parse_csv(SAMPLE, "nope", "speedup", "strategy").is_err());
    }

    #[test]
    fn parse_handles_suffixed_numbers() {
        let text = "impl,threads,mem\na,1,38.15 (MiB)\n";
        let s = parse_csv(text, "threads", "mem", "impl").unwrap();
        assert_eq!(s[0].points, vec![(1.0, 38.15)]);
    }

    #[test]
    fn render_contains_glyphs_and_legend() {
        let s = parse_csv(SAMPLE, "threads", "speedup", "strategy").unwrap();
        let chart = render(&s, 40, 10);
        assert!(chart.contains('*'), "first glyph missing:\n{chart}");
        assert!(chart.contains('o'), "second glyph missing:\n{chart}");
        assert!(chart.contains("dense"));
        assert!(chart.contains("keeper"));
        // Axis line present.
        assert!(chart.contains("+----"));
    }

    #[test]
    fn render_degenerate_inputs() {
        assert_eq!(render(&[], 40, 10), "(no data)\n");
        let one = [Series {
            name: "p".into(),
            points: vec![(1.0, 1.0)],
        }];
        let chart = render(&one, 20, 5);
        assert!(chart.contains('*'));
    }
}
