//! Shared driver for the transpose-SpMV figures (Fig. 14 and Fig. 15).

use crate::args::Opts;
use crate::workloads::spmv_x;
use crate::{fmt_mib, time_reps};
use ompsim::ThreadPool;
use spray::Strategy;
use spray_sparse::mkl_sim::{legacy_tmv, Hint, MklSim};
use spray_sparse::{tmv_with_strategy, Csr};

/// Runs the full strategy × baseline sweep the paper plots for one matrix
/// and prints the CSV series (time panel + memory column).
pub fn run_spmv_figure(figure: &str, matrix_name: &str, a: &Csr<f64>, opts: &Opts) {
    let x = spmv_x(a.nrows());
    let mut y = vec![0.0f64; a.ncols()];

    println!(
        "# {figure}: transpose-SpMV on {matrix_name} ({}x{}, nnz = {}), reps = {}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        opts.reps
    );
    println!(
        "# mkl-ie-hint excludes inspection time (paper's 'unfair advantage') but counts its memory"
    );
    println!("impl,threads,mean_s,best_s,speedup,mem_overhead_mib");

    let t_seq = time_reps(opts.reps, || {
        y.fill(0.0);
        a.tmatvec_seq(&x, &mut y);
    });
    println!(
        "sequential,1,{:.6},{:.6},1.000,0.00",
        t_seq.mean, t_seq.best
    );

    for &threads in &opts.threads {
        let pool = ThreadPool::new(threads);

        // SPRAY strategies (plus dense, which stands in for the OpenMP
        // built-in reduction).
        for &strategy in &Strategy::competitive(1024) {
            let mut mem = 0usize;
            let t = time_reps(opts.reps, || {
                y.fill(0.0);
                let r = tmv_with_strategy(strategy, &pool, a, &x, &mut y);
                mem = r.memory_overhead;
            });
            println!(
                "{},{},{:.6},{:.6},{:.3},{}",
                strategy.label(),
                threads,
                t.mean,
                t.best,
                t_seq.mean / t.mean,
                fmt_mib(mem)
            );
        }

        // Simulated MKL legacy one-call routine.
        let t = time_reps(opts.reps, || {
            y.fill(0.0);
            legacy_tmv(&pool, a, &x, &mut y);
        });
        println!(
            "mkl-legacy,{threads},{:.6},{:.6},{:.3},0.00",
            t.mean,
            t.best,
            t_seq.mean / t.mean
        );

        // Simulated inspector/executor without hints: inspection (cheap row
        // blocking) runs once, outside the timed region, like the paper.
        let mut handle = MklSim::new(a);
        handle.optimize(threads);
        let t = time_reps(opts.reps, || {
            y.fill(0.0);
            handle.tmv(&pool, &x, &mut y);
        });
        println!(
            "mkl-ie-nohint,{threads},{:.6},{:.6},{:.3},{}",
            t.mean,
            t.best,
            t_seq.mean / t.mean,
            fmt_mib(handle.optimization_bytes())
        );

        // Inspector/executor with hints: the inspector materializes the
        // transpose (untimed); the executor is a conflict-free gather.
        let mut handle = MklSim::new(a);
        handle.set_hint(Hint::TransposeMany);
        handle.optimize(threads);
        let t = time_reps(opts.reps, || {
            y.fill(0.0);
            handle.tmv(&pool, &x, &mut y);
        });
        println!(
            "mkl-ie-hint,{threads},{:.6},{:.6},{:.3},{}",
            t.mean,
            t.best,
            t_seq.mean / t.mean,
            fmt_mib(handle.optimization_bytes())
        );
    }
}
