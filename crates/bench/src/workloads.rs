//! Shared workload builders used by the figure binaries.

use spray_conv::Stencil3;
use spray_sparse::{gen, Csr};

/// Conv-backprop input of `n` single-precision values (§VI-A uses
/// 10⁷ single-precision floats).
pub fn conv_input(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f32 * 1e-3)
        .collect()
}

/// The paper's default conv problem size (10⁷), shrunk under `--quick`.
pub fn conv_size(quick: bool, n_override: Option<usize>) -> usize {
    n_override.unwrap_or(if quick { 100_000 } else { 10_000_000 })
}

/// The 3-point stencil weights used in the figures.
pub fn stencil() -> Stencil3<f32> {
    Stencil3 {
        wl: 0.25,
        wc: 0.5,
        wr: 0.25,
    }
}

/// s3dkt3m2 stand-in (full size unless `quick`).
pub fn s3dkt3m2(quick: bool) -> Csr<f64> {
    if quick {
        gen::s3dkt3m2_small(5_000)
    } else {
        gen::s3dkt3m2_like()
    }
}

/// debr stand-in (order-20 de Bruijn graph unless `quick`).
pub fn debr(quick: bool) -> Csr<f64> {
    gen::de_bruijn(if quick { 14 } else { 20 })
}

/// Input vector for the transpose products.
pub fn spmv_x(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31) % 17) as f64 * 0.25 + 0.1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(conv_size(false, None), 10_000_000);
        assert_eq!(conv_size(true, None), 100_000);
        assert_eq!(conv_size(true, Some(42)), 42);
    }

    #[test]
    fn quick_matrices_are_small() {
        assert!(s3dkt3m2(true).nrows() <= 5_000);
        assert_eq!(debr(true).nrows(), 1 << 14);
    }
}
