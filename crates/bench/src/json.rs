//! Minimal JSON reader for telemetry artifacts.
//!
//! The workspace is offline-first and serializes its reports by hand
//! (`RunReport::to_json` in spray-core); this is the matching reader, so
//! the smoke tests and tooling can round-trip those artifacts without an
//! external dependency. It is a strict recursive-descent parser over the
//! JSON subset the harness emits — objects, arrays, strings with the
//! common escapes, f64 numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the harness
    /// writes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup: `j.get("phases")`, None for absent keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON value (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.into(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            m.insert(k, self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self.b.get(self.i).ok_or_else(|| self.err("open escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            s.push(char::from_u32(hex).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is a &str, so
                    // byte boundaries are valid char boundaries).
                    let rest = &self.b[self.i..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.i += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn nesting_and_accessors() {
        let j = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(j.get("c"), Some(&Json::Bool(false)));
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn parses_a_real_run_report() {
        // Produced by spray's RunReport::to_json — the exact artifact the
        // telemetry smoke test consumes.
        use spray::{reduce_dyn, Strategy, Sum};
        let pool = ompsim::ThreadPool::new(2);
        let mut out = vec![0i64; 64];
        let report = reduce_dyn::<i64, Sum>(
            Strategy::BlockCas { block_size: 16 },
            &pool,
            &mut out,
            0..640,
            ompsim::Schedule::default(),
            &|v, i| v.apply(i % 64, 1),
        );
        let j = parse(&report.to_json()).expect("RunReport JSON must parse");
        assert_eq!(j.get("strategy").unwrap().as_str(), Some("block-CAS-16"));
        let totals = j.get("counters").unwrap().get("totals").unwrap();
        assert_eq!(totals.get("applies").unwrap().as_num(), Some(640.0));
        let phases = j.get("phases").unwrap();
        for key in [
            "loop_secs",
            "barrier_secs",
            "epilogue_secs",
            "finish_secs",
            "region_secs",
        ] {
            assert!(phases.get(key).unwrap().as_num().is_some(), "{key}");
        }
        let per_thread = j
            .get("counters")
            .unwrap()
            .get("per_thread")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(per_thread.len(), 2);
        // The merge-bandwidth column is always emitted; a block strategy
        // over a contended pattern merged something, so the figure is a
        // number ≥ 0 (0 only if the epilogue was too fast to time).
        assert!(j.get("merge_bandwidth").unwrap().as_num().unwrap() >= 0.0);
        // Plan amortization fields are always present (zero when the
        // region ran without a caller-supplied region id).
        assert_eq!(j.get("plan_build_secs").unwrap().as_num(), Some(0.0));
        assert_eq!(j.get("planned_regions").unwrap().as_num(), Some(0.0));
        // So are the adaptive-execution fields (zero / single-entry under
        // a fixed one-shot region).
        assert_eq!(j.get("migrations").unwrap().as_num(), Some(0.0));
        assert_eq!(j.get("migration_secs").unwrap().as_num(), Some(0.0));
        let regions = j.get("strategy_regions").unwrap();
        assert_eq!(regions.get("block-CAS-16").unwrap().as_num(), Some(1.0));
        // Service admission fields are always emitted, zero outside a
        // ReductionService.
        assert_eq!(j.get("jobs").unwrap().as_num(), Some(0.0));
        assert_eq!(j.get("batched_regions").unwrap().as_num(), Some(0.0));
        assert_eq!(j.get("queue_wait_secs").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn service_run_report_round_trips() {
        // A batched service region: the report's admission telemetry
        // (jobs, batched_regions, cumulative queue wait) must survive
        // RunReport::to_json and this parser with the sampled values.
        use spray::Sum;
        use spray_service::{Job, ReductionService, ServiceConfig};
        let svc = ReductionService::<i64, Sum>::new(ServiceConfig {
            threads: 2,
            batch_window: 4,
            ..ServiceConfig::default()
        });
        let jobs: Vec<Job<'static, i64>> = (0..4)
            .map(|t| Job {
                tenant: t,
                class: 3,
                out: vec![0i64; 64],
                iters: 256,
                body: Box::new(|view, i| view.apply(i % 64, 1)),
            })
            .collect();
        let results = svc.run_scoped(jobs);
        // run_scoped admits the whole group atomically, so all four jobs
        // were counted before the first region ran and the same-shape
        // window coalesced them into one batched region.
        let last = results.last().unwrap();
        let j = parse(&last.report.to_json()).expect("service RunReport JSON must parse");
        assert_eq!(j.get("jobs").unwrap().as_num(), Some(4.0));
        assert!(j.get("batched_regions").unwrap().as_num().unwrap() >= 1.0);
        assert!(j.get("queue_wait_secs").unwrap().as_num().unwrap() >= 0.0);
    }

    #[test]
    fn planned_run_report_round_trips() {
        // A recording + replay pair through the executor: the replay's
        // report must carry a nonzero planned_regions through the parser.
        use spray::{Kernel, ReducerView, RegionExecutor, Strategy, Sum};
        struct Mod64;
        impl Kernel<i64> for Mod64 {
            fn item<V: ReducerView<i64>>(&self, view: &mut V, i: usize) {
                view.apply(i % 64, 1);
            }
        }
        let pool = ompsim::ThreadPool::new(2);
        let mut ex = RegionExecutor::<i64, Sum>::new(Strategy::BlockPrivate { block_size: 16 });
        let mut last = None;
        for _ in 0..3 {
            let mut out = vec![0i64; 64];
            last = Some(ex.run_planned(
                9,
                &pool,
                &mut out,
                0..640,
                ompsim::Schedule::default(),
                &Mod64,
            ));
        }
        let j = parse(&last.unwrap().to_json()).expect("planned RunReport JSON must parse");
        assert_eq!(j.get("planned_regions").unwrap().as_num(), Some(2.0));
        let build = j.get("plan_build_secs").unwrap().as_num().unwrap();
        assert!(build > 0.0, "plan build time should be recorded and > 0");
    }

    #[test]
    fn migrated_run_report_round_trips() {
        // A migration mid-stream: the final report's migration telemetry
        // (count, protocol seconds, per-strategy region map) must survive
        // serialization and this parser.
        use spray::{Kernel, ReducerView, RegionExecutor, Strategy, Sum};
        struct Mod64;
        impl Kernel<i64> for Mod64 {
            fn item<V: ReducerView<i64>>(&self, view: &mut V, i: usize) {
                view.apply(i % 64, 1);
            }
        }
        let pool = ompsim::ThreadPool::new(2);
        let mut ex = RegionExecutor::<i64, Sum>::new(Strategy::BlockPrivate { block_size: 16 });
        let mut out = vec![0i64; 64];
        ex.run_planned(
            0,
            &pool,
            &mut out,
            0..640,
            ompsim::Schedule::default(),
            &Mod64,
        );
        ex.migrate_to(Strategy::Atomic);
        out.fill(0);
        let report = ex.run_planned(
            0,
            &pool,
            &mut out,
            0..640,
            ompsim::Schedule::default(),
            &Mod64,
        );

        let j = parse(&report.to_json()).expect("migrated RunReport JSON must parse");
        assert_eq!(j.get("migrations").unwrap().as_num(), Some(1.0));
        assert!(j.get("migration_secs").unwrap().as_num().unwrap() > 0.0);
        let regions = j.get("strategy_regions").unwrap();
        assert_eq!(regions.get("block-private-16").unwrap().as_num(), Some(1.0));
        assert_eq!(regions.get("atomic").unwrap().as_num(), Some(1.0));
    }
}
