//! Tiny shared command-line parser for the figure binaries.
//!
//! Flag grammar lives here once — in particular `--strategy` defers to
//! [`spray::Strategy`]'s central `FromStr` grammar and `--churn` to
//! [`parse_churn_list`], so the delta/dirty flags are never re-parsed
//! (or re-invented) per binary.

/// Options common to every figure binary.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Thread counts to sweep (`--threads 1,2,4,8`). Default: powers of two
    /// up to twice the available parallelism (the paper sweeps 1..56 on a
    /// 28-core socket, i.e. into 2× oversubscription).
    pub threads: Vec<usize>,
    /// Timed repetitions per configuration (`--reps N`, default 5).
    pub reps: usize,
    /// Shrink the workload for smoke-testing (`--quick`).
    pub quick: bool,
    /// Problem-size override (`--n N`), meaning depends on the binary.
    pub n: Option<usize>,
    /// Gate mode (`--check`): exit nonzero when the binary's acceptance
    /// assertion fails, for use as a CI smoke gate.
    pub check: bool,
    /// Scratch-memory budget in bytes (`--budget-bytes B`), forwarded to
    /// the executor as a [`spray::PlanBudget`]. `None` = unlimited; `0`
    /// is meaningful (no shared scratch beyond the bare minimum).
    pub budget_bytes: Option<usize>,
    /// Scatter strategy override (`--strategy block-cas-64`), parsed by
    /// [`spray::Strategy`]'s `FromStr` — the one grammar every binary
    /// shares. `None` = the binary's own default.
    pub strategy: Option<spray::Strategy>,
    /// Churn fractions to sweep (`--churn 0.0005,0.001,0.01`): the share
    /// of elements mutated per delta batch. Empty = the binary's default
    /// sweep.
    pub churn: Vec<f64>,
}

impl Default for Opts {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut threads = vec![1usize];
        while *threads.last().unwrap() < 2 * hw {
            threads.push(threads.last().unwrap() * 2);
        }
        Opts {
            threads,
            reps: 5,
            quick: false,
            n: None,
            check: false,
            budget_bytes: None,
            strategy: None,
            churn: Vec::new(),
        }
    }
}

/// Parses a comma-separated list of churn fractions, each in `(0, 1]`.
/// The one parser for every `--churn`-taking binary.
pub fn parse_churn_list(v: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for s in v.split(',') {
        let f = s
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("bad churn fraction '{}': {e}", s.trim()))?;
        if !(f > 0.0 && f <= 1.0) {
            return Err(format!("churn fraction {f} outside (0, 1]"));
        }
        out.push(f);
    }
    if out.is_empty() {
        return Err("churn list is empty".into());
    }
    Ok(out)
}

impl Opts {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Opts {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable form of [`Opts::parse`]).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Opts {
        let mut opts = Opts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    opts.threads = v
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .unwrap_or_else(|| usage("bad thread count"))
                        })
                        .collect();
                    if opts.threads.is_empty() {
                        usage("--threads list is empty");
                    }
                }
                "--reps" => {
                    let v = it.next().unwrap_or_else(|| usage("--reps needs a value"));
                    opts.reps = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("bad rep count"));
                }
                "--n" => {
                    let v = it.next().unwrap_or_else(|| usage("--n needs a value"));
                    opts.n = Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage("bad problem size")),
                    );
                }
                "--budget-bytes" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--budget-bytes needs a value"));
                    opts.budget_bytes = Some(
                        v.parse::<usize>()
                            .ok()
                            .unwrap_or_else(|| usage("bad budget")),
                    );
                }
                "--strategy" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--strategy needs a value"));
                    opts.strategy = Some(
                        v.parse::<spray::Strategy>()
                            .unwrap_or_else(|e| usage(&e.to_string())),
                    );
                }
                "--churn" => {
                    let v = it.next().unwrap_or_else(|| usage("--churn needs a value"));
                    opts.churn = parse_churn_list(&v).unwrap_or_else(|e| usage(&e));
                }
                "--quick" => opts.quick = true,
                "--check" => opts.check = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        opts
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--threads 1,2,4] [--reps N] [--n SIZE] [--budget-bytes B] \
         [--strategy LABEL] [--churn F1,F2] [--quick] [--check]\n\
         prints CSV to stdout; lines starting with # are context"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Opts {
        Opts::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let o = parse("");
        assert!(!o.quick);
        assert_eq!(o.reps, 5);
        assert!(o.threads.contains(&1));
        assert!(o.n.is_none());
        assert!(o.budget_bytes.is_none());
    }

    #[test]
    fn full_flags() {
        let o = parse("--threads 1,3,9 --reps 2 --n 1000 --budget-bytes 4096 --quick --check");
        assert_eq!(o.threads, vec![1, 3, 9]);
        assert_eq!(o.reps, 2);
        assert_eq!(o.n, Some(1000));
        assert_eq!(o.budget_bytes, Some(4096));
        assert!(o.quick);
        assert!(o.check);
    }

    #[test]
    fn zero_budget_is_legal() {
        // 0 means "no shared scratch", not "unset".
        let o = parse("--budget-bytes 0");
        assert_eq!(o.budget_bytes, Some(0));
    }

    #[test]
    fn strategy_uses_central_grammar() {
        let o = parse("--strategy block-cas-64");
        assert_eq!(
            o.strategy,
            Some(spray::Strategy::BlockCas { block_size: 64 })
        );
        let o = parse("--strategy segmented-5");
        assert_eq!(
            o.strategy,
            Some(spray::Strategy::Segmented { bucket_bits: 5 })
        );
        assert!(parse("").strategy.is_none());
    }

    #[test]
    fn churn_list_parses_and_validates() {
        let o = parse("--churn 0.0005,0.01,1.0");
        assert_eq!(o.churn, vec![0.0005, 0.01, 1.0]);
        assert!(parse("").churn.is_empty());
        assert!(parse_churn_list("0.5, 0.25").is_ok());
        assert!(parse_churn_list("0").is_err());
        assert!(parse_churn_list("1.5").is_err());
        assert!(parse_churn_list("nope").is_err());
    }
}
