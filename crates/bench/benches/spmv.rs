//! Criterion micro-benchmark behind Figs. 14/15: transpose-SpMV on scaled
//! versions of both evaluation matrices, for every strategy and the
//! simulated MKL baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use ompsim::ThreadPool;
use spray::Strategy;
use spray_sparse::mkl_sim::{legacy_tmv, Hint, MklSim};
use spray_sparse::{gen, tmv_with_strategy, Csr};

fn bench_matrix(c: &mut Criterion, name: &str, a: &Csr<f64>) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i % 13) as f64 * 0.5).collect();
    let mut y = vec![0.0f64; a.ncols()];

    let mut group = c.benchmark_group(name.to_string());
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            y.fill(0.0);
            a.tmatvec_seq(&x, &mut y);
        })
    });

    for strategy in Strategy::competitive(1024) {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                y.fill(0.0);
                tmv_with_strategy(strategy, &pool, a, &x, &mut y);
            })
        });
    }

    group.bench_function("mkl-legacy", |b| {
        b.iter(|| {
            y.fill(0.0);
            legacy_tmv(&pool, a, &x, &mut y);
        })
    });

    let mut nohint = MklSim::new(a);
    nohint.optimize(threads);
    group.bench_function("mkl-ie-nohint", |b| {
        b.iter(|| {
            y.fill(0.0);
            nohint.tmv(&pool, &x, &mut y);
        })
    });

    let mut hinted = MklSim::new(a);
    hinted.set_hint(Hint::TransposeMany);
    hinted.optimize(threads);
    group.bench_function("mkl-ie-hint", |b| {
        b.iter(|| {
            y.fill(0.0);
            hinted.tmv(&pool, &x, &mut y);
        })
    });

    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    bench_matrix(c, "fig14_s3dkt3m2_scaled", &gen::s3dkt3m2_small(10_000));
    bench_matrix(c, "fig15_debr_scaled", &gen::de_bruijn(16));
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
