//! Criterion micro-benchmark behind Fig. 11: conv back-propagation under
//! every reduction strategy (plus the sequential reference), at the pool
//! width of the host. The `fig11_conv_speedup` binary produces the full
//! thread sweep; this gives statistically tight per-strategy numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::{backprop3_seq, Backprop3Kernel, Stencil3};

const N: usize = 1_000_000;

fn bench_conv(c: &mut Criterion) {
    let inp: Vec<f32> = (0..N).map(|i| (i % 1000) as f32 * 1e-3).collect();
    let w = Stencil3 {
        wl: 0.25,
        wc: 0.5,
        wr: 0.25,
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let kernel = Backprop3Kernel { inp: &inp, w };
    let mut out = vec![0.0f32; N];

    let mut group = c.benchmark_group("fig11_conv");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            out.fill(0.0);
            backprop3_seq(&mut out, &inp, w);
        })
    });

    for strategy in Strategy::all(1024) {
        // Map strategies are ~100x slower; bench them at reduced weight by
        // skipping in the default run (documented paper finding).
        if matches!(strategy, Strategy::MapBTree | Strategy::MapHash) {
            continue;
        }
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                out.fill(0.0);
                reduce_strategy::<f32, Sum, _>(
                    strategy,
                    &pool,
                    &mut out,
                    1..N - 1,
                    Schedule::default(),
                    &kernel,
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
