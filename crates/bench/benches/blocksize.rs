//! Criterion micro-benchmark behind Fig. 13: block-size sweep of the three
//! block reducers on the conv-backprop workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ompsim::{Schedule, ThreadPool};
use spray::{reduce_strategy, Strategy, Sum};
use spray_conv::{Backprop3Kernel, Stencil3};

const N: usize = 1_000_000;

fn bench_blocksizes(c: &mut Criterion) {
    let inp: Vec<f32> = (0..N).map(|i| (i % 997) as f32 * 1e-3).collect();
    let w = Stencil3 {
        wl: 0.25,
        wc: 0.5,
        wr: 0.25,
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let kernel = Backprop3Kernel { inp: &inp, w };
    let mut out = vec![0.0f32; N];

    let mut group = c.benchmark_group("fig13_blocksize");
    group.sample_size(10);
    for bs in [16usize, 256, 1024, 16384] {
        for strategy in [
            Strategy::BlockPrivate { block_size: bs },
            Strategy::BlockLock { block_size: bs },
            Strategy::BlockCas { block_size: bs },
        ] {
            group.bench_function(strategy.label(), |b| {
                b.iter(|| {
                    out.fill(0.0);
                    reduce_strategy::<f32, Sum, _>(
                        strategy,
                        &pool,
                        &mut out,
                        1..N - 1,
                        Schedule::default(),
                        &kernel,
                    );
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_blocksizes);
criterion_main!(benches);
