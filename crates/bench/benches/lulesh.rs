//! Criterion micro-benchmark behind Fig. 16: one LULESH-proxy force
//! computation (the paper's modified sweeps) per accumulation scheme, and
//! a short whole-run comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use ompsim::ThreadPool;
use spray::Strategy;
use spray_lulesh::{calc_force_for_nodes, run, Domain, ForceScheme, Params};

fn bench_lulesh(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(threads);

    let schemes = [
        ForceScheme::Seq,
        ForceScheme::EightCopy,
        ForceScheme::Spray(Strategy::Dense),
        ForceScheme::Spray(Strategy::Atomic),
        ForceScheme::Spray(Strategy::BlockLock { block_size: 1024 }),
        ForceScheme::Spray(Strategy::BlockCas { block_size: 1024 }),
        ForceScheme::Spray(Strategy::Keeper),
    ];

    // The force scatter alone (the code the paper modifies).
    {
        let mut group = c.benchmark_group("fig16_force_sweep_nx16");
        group.sample_size(10);
        let mut d = Domain::new(16, Params::default());
        for scheme in schemes {
            group.bench_function(scheme.label(), |b| {
                b.iter(|| calc_force_for_nodes(&mut d, &pool, scheme))
            });
        }
        group.finish();
    }

    // Whole runs (what Fig. 16 actually times), small mesh.
    {
        let mut group = c.benchmark_group("fig16_whole_run_nx8x5iter");
        group.sample_size(10);
        for scheme in schemes {
            group.bench_function(scheme.label(), |b| {
                b.iter(|| {
                    let mut d = Domain::new(8, Params::default());
                    run(&mut d, &pool, scheme, 5)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_lulesh);
criterion_main!(benches);
