//! Criterion micro-benchmark for the graph workloads (the paper's §VI-B
//! graph-proxy motivation made concrete): one PageRank push iteration and
//! one BFS per strategy on a de Bruijn graph.

use criterion::{criterion_group, criterion_main, Criterion};
use ompsim::ThreadPool;
use spray::Strategy;
use spray_graph::{bfs, in_degrees, pagerank, Graph};

fn bench_graph(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let g = Graph::de_bruijn(15); // 32k vertices

    let strategies = [
        Strategy::Dense,
        Strategy::Atomic,
        Strategy::BlockCas { block_size: 1024 },
        Strategy::Keeper,
        Strategy::Log,
    ];

    let mut group = c.benchmark_group("graph_pagerank_10it");
    group.sample_size(10);
    for strategy in strategies {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| pagerank(&pool, &g, strategy, 0.85, 0.0, 10))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("graph_bfs");
    group.sample_size(10);
    for strategy in strategies {
        group.bench_function(strategy.label(), |b| b.iter(|| bfs(&pool, &g, 1, strategy)));
    }
    group.finish();

    let mut group = c.benchmark_group("graph_degree_histogram");
    group.sample_size(10);
    for strategy in strategies {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| in_degrees(&pool, &g, strategy))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
