//! `memtrack` — a counting global allocator.
//!
//! The paper measures the *memory overhead* of each reduction scheme as the
//! difference between the maximum resident set size of the parallel program
//! and that of the sequential program, using GNU `time` (§VI, noting ±5 MB
//! run-to-run noise). A counting allocator measures the same quantity —
//! extra heap claimed by privatization/bookkeeping — deterministically and
//! per-phase, which is what the benchmark harness wants.
//!
//! Usage: declare [`CountingAlloc`] as the global allocator in a binary,
//! then bracket a measured phase with [`reset_peak`] / [`peak_bytes`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: memtrack::CountingAlloc = memtrack::CountingAlloc;
//!
//! memtrack::reset_peak();
//! run_workload();
//! let overhead = memtrack::peak_bytes() - baseline_peak;
//! ```
//!
//! The counters are updated with relaxed atomics; the peak is maintained
//! with a CAS loop. Counting costs a couple of atomic ops per allocation,
//! which is negligible next to the allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Global allocator that forwards to the system allocator while tracking
/// live bytes, peak live bytes and the total number of allocations.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record_alloc(size: usize) {
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        // Maintain the high-water mark.
        let mut peak = PEAK.load(Ordering::Relaxed);
        while live > peak {
            match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: forwards allocation to `System` unchanged; only counters are
// maintained on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Total number of allocations performed since process start.
pub fn total_allocations() -> usize {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, starting a new measured phase.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Convenience: runs `f` and returns `(result, peak_extra_bytes)` where
/// `peak_extra_bytes` is how far the heap high-water mark rose above the
/// level at entry — the paper's "memory overhead" for the phase.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let guard = PhaseGuard::begin();
    let r = f();
    (r, guard.peak_extra())
}

/// RAII variant of [`measure_peak`]: begin a measured phase, query
/// [`PhaseGuard::peak_extra`] at any point (e.g. in a `Drop` report).
pub struct PhaseGuard {
    baseline: usize,
}

impl PhaseGuard {
    /// Starts a measured phase (resets the peak to the current level).
    pub fn begin() -> Self {
        let baseline = current_bytes();
        reset_peak();
        PhaseGuard { baseline }
    }

    /// Live bytes when the phase began.
    pub fn baseline(&self) -> usize {
        self.baseline
    }

    /// How far the heap high-water mark has risen above the baseline so
    /// far in this phase.
    pub fn peak_extra(&self) -> usize {
        peak_bytes().saturating_sub(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    // NOTE: these tests do not install the allocator (a test harness cannot),
    // so they only exercise the counter plumbing via the record hooks.
    use super::*;

    #[test]
    fn counters_track_alloc_dealloc() {
        let base = current_bytes();
        CountingAlloc::record_alloc(1000);
        assert_eq!(current_bytes(), base + 1000);
        assert!(peak_bytes() >= base + 1000);
        CountingAlloc::record_dealloc(1000);
        assert_eq!(current_bytes(), base);
    }

    #[test]
    fn reset_peak_rebases() {
        CountingAlloc::record_alloc(5000);
        CountingAlloc::record_dealloc(5000);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn phase_guard_measures_rise() {
        let g = PhaseGuard::begin();
        CountingAlloc::record_alloc(4096);
        CountingAlloc::record_dealloc(4096);
        assert!(g.peak_extra() >= 4096);
        assert_eq!(g.baseline(), current_bytes());
    }
}
