//! A self-contained subset of the `proptest` crate API.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! the real `proptest` from a registry. This shim implements the slice of
//! the API the test suite uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, range/tuple/`Just`/`any` strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//! `prop_filter` and `boxed` — over a deterministic splitmix64 generator.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! derived deterministically from the test name (no OS entropy, no
//! persisted failure seeds), and there is no shrinking — a failing case
//! reports its inputs via `Debug` and panics immediately. Both keep the
//! shim small while preserving what the suite actually relies on:
//! reproducible coverage of the input space.

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 stream, seeded from the test name so every
    /// test sees an independent, stable sequence across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`. Unlike real proptest there
    /// is no value tree or shrinking: `generate` yields a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Rejection-samples until `pred` accepts; gives up (panics) after
        /// 10 000 straight rejections, mirroring proptest's local-reject
        /// limit in spirit.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    // Object-safe view used by `BoxedStrategy`.
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (`Strategy::boxed`, `prop_oneof!` arms).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `prop_oneof!`: picks one arm uniformly per case.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 10000 candidates", self.whence);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = self.end().abs_diff(*self.start()) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    self.start().wrapping_add(off as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_camel_case_types)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B)(A, B, C)(A, B, C, D));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: full bit-pattern f64s (NaN/Inf) would
            // poison arithmetic-heavy properties.
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bound for `collection::vec`; built from `usize` ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty vec");
        Select(options)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Real proptest exposes `prop::collection::...` etc. through its
    // prelude by re-exporting the crate root under the name `prop`.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the suite uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(arg in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n  inputs: {}",
                        stringify!($name),
                        $crate::proptest!(@fmt_args $($arg),+),
                    );
                }
            }
        }
    )*};
    (@fmt_args $($arg:ident),+) => {
        // Inputs were moved into the case body; report names only. The
        // deterministic rng means re-running the test reproduces them.
        concat!($(stringify!($arg), " ",)+)
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        $crate::prop_assert_eq!($a, $b, "");
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = &$a;
        let b = &$b;
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+),
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        $crate::prop_assert_ne!($a, $b, "");
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = &$a;
        let b = &$b;
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} == {} (both {:?})\n  {}",
                stringify!($a), stringify!($b), a, format!($($fmt)+),
            )));
        }
    }};
}

/// Uniform choice between strategy arms producing the same `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn vec_and_select_and_oneof_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let strat = prop::collection::vec((0usize..10, 0usize..10), 1..20)
            .prop_filter("nonempty", |v| !v.is_empty())
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let len = Strategy::generate(&strat, &mut rng);
            assert!((1..20).contains(&len));
        }
        let pick = prop::sample::select(vec![1usize, 3, 16, 64]);
        for _ in 0..50 {
            assert!([1usize, 3, 16, 64].contains(&Strategy::generate(&pick, &mut rng)));
        }
        let mixed = prop_oneof![Just(7usize), (100usize..200).prop_map(|x| x)];
        for _ in 0..50 {
            let v = Strategy::generate(&mixed, &mut rng);
            assert!(v == 7 || (100..200).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(a in 1usize..5, b in any::<u32>()) {
            prop_assert!((1..5).contains(&a), "a out of range: {a}");
            let _ = b;
            prop_assert_eq!(a * 2, a + a);
            prop_assert_ne!(a, 0);
        }
    }
}
