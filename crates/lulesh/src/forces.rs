//! Nodal force computation — the sparse-reduction heart of the proxy.
//!
//! Two sweeps over elements scatter 8×3 corner-force contributions each to
//! the shared nodal force array, mirroring LULESH's
//! `IntegrateStressForElems` and `CalcFBHourglassForceForElems` (the two
//! functions the paper rewrites with SPRAY). The scatter runs under a
//! selectable [`ForceScheme`]:
//!
//! * [`ForceScheme::Seq`] — sequential reference;
//! * [`ForceScheme::Spray`] — any spray reduction strategy over the
//!   interleaved nodal force array;
//! * [`ForceScheme::EightCopy`] — LULESH's domain-specific parallelization:
//!   the force array is replicated 8×, element-parallel writes go to the
//!   replica selected by the *local corner number* (race-free because a
//!   node is corner `c` of at most one element), and an extra sweep
//!   combines the replicas. This is the baseline Fig. 16 compares against:
//!   its memory footprint jumps as soon as more than one thread runs.

use crate::domain::Domain;
use crate::hex::{node_normals, GAMMA};
use ompsim::{Schedule, ThreadPool};
use spray::{ExecutorPolicy, Kernel, PlanBudget, ReducerView, ReusableReducer, Strategy, Sum};

/// How nodal force contributions are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceScheme {
    /// Sequential reference sweep.
    Seq,
    /// Spray reduction with the given strategy.
    Spray(Strategy),
    /// LULESH's 8-replica domain-specific scheme.
    EightCopy,
}

impl ForceScheme {
    /// Label used in benchmark reports.
    pub fn label(&self) -> String {
        match self {
            ForceScheme::Seq => "sequential".into(),
            ForceScheme::Spray(s) => s.label(),
            ForceScheme::EightCopy => "lulesh-8copy".into(),
        }
    }
}

/// Corner forces from the isotropic stress `σ = -(p+q)·I`:
/// `f_k = -σ · B_k = (p+q) · B_k` (LULESH `IntegrateStressForElems` +
/// `SumElemStressesToNodeForces`). With outward node normals `B = ∂V/∂x`,
/// positive pressure pushes nodes outward, expanding the element.
#[inline]
pub(crate) fn stress_corner_forces(d: &Domain, e: usize) -> ([f64; 8], [f64; 8], [f64; 8]) {
    let (x, y, z) = d.elem_coords(e);
    let (bx, by, bz) = node_normals(&x, &y, &z);
    let s = d.p[e] + d.q[e];
    (bx.map(|b| s * b), by.map(|b| s * b), bz.map(|b| s * b))
}

/// Corner forces of the Flanagan–Belytschko hourglass filter
/// (LULESH `CalcFBHourglassForceForElems` per-element part): the four Γ
/// modes are orthogonalized against the element geometry (using the node
/// normals as the volume derivative), the velocity field is projected onto
/// them, and a restoring force proportional to `ss·mass/∛V` pushes back.
#[inline]
pub(crate) fn hourglass_corner_forces(d: &Domain, e: usize) -> ([f64; 8], [f64; 8], [f64; 8]) {
    let (x, y, z) = d.elem_coords(e);
    let (xd, yd, zd) = d.elem_velocities(e);
    let (bx, by, bz) = node_normals(&x, &y, &z);
    let volume = d.volo[e] * d.v[e];
    let volinv = 1.0 / volume;

    // Orthogonalized hourglass shape vectors.
    let mut hourgam = [[0.0f64; 8]; 4];
    for (m, gamma) in GAMMA.iter().enumerate() {
        let hx: f64 = (0..8).map(|j| gamma[j] * x[j]).sum();
        let hy: f64 = (0..8).map(|j| gamma[j] * y[j]).sum();
        let hz: f64 = (0..8).map(|j| gamma[j] * z[j]).sum();
        for k in 0..8 {
            hourgam[m][k] = gamma[k] - volinv * (bx[k] * hx + by[k] * hy + bz[k] * hz);
        }
    }

    let coefficient = -d.params.hgcoef * 0.01 * d.ss[e] * d.elem_mass[e] / volume.cbrt();

    let mut fx = [0.0f64; 8];
    let mut fy = [0.0f64; 8];
    let mut fz = [0.0f64; 8];
    for hg in &hourgam {
        let hxd: f64 = (0..8).map(|j| hg[j] * xd[j]).sum();
        let hyd: f64 = (0..8).map(|j| hg[j] * yd[j]).sum();
        let hzd: f64 = (0..8).map(|j| hg[j] * zd[j]).sum();
        for k in 0..8 {
            fx[k] += coefficient * hg[k] * hxd;
            fy[k] += coefficient * hg[k] * hyd;
            fz[k] += coefficient * hg[k] * hzd;
        }
    }
    (fx, fy, fz)
}

/// Error from parsing a [`ForceScheme`] with `str::parse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseForceSchemeError(String);

impl std::fmt::Display for ParseForceSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid force scheme '{}': expected seq | 8copy | <spray strategy label>",
            self.0
        )
    }
}

impl std::error::Error for ParseForceSchemeError {}

impl std::str::FromStr for ForceScheme {
    type Err = ParseForceSchemeError;

    /// Parses `seq`, `8copy`/`lulesh-8copy`, or any spray strategy label
    /// (e.g. `block-lock-1024`, `keeper`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Ok(ForceScheme::Seq),
            "8copy" | "lulesh-8copy" | "eightcopy" => Ok(ForceScheme::EightCopy),
            other => other
                .parse::<Strategy>()
                .map(ForceScheme::Spray)
                .map_err(|_| ParseForceSchemeError(s.to_string())),
        }
    }
}

/// Which of the two force sweeps a pass runs (also the index of the
/// pass's retained reducer in [`ForceAccum`]).
#[derive(Clone, Copy)]
enum Pass {
    Stress = 0,
    Hourglass = 1,
}

struct ForceKernel<'a> {
    d: &'a Domain,
    pass: Pass,
}

impl Kernel<f64> for ForceKernel<'_> {
    #[inline]
    fn item<V: ReducerView<f64>>(&self, view: &mut V, e: usize) {
        let (fx, fy, fz) = match self.pass {
            Pass::Stress => stress_corner_forces(self.d, e),
            Pass::Hourglass => hourglass_corner_forces(self.d, e),
        };
        let en = &self.d.mesh.elem_node[e];
        for k in 0..8 {
            let n = en[k] as usize * 3;
            view.apply(n, fx[k]);
            view.apply(n + 1, fy[k]);
            view.apply(n + 2, fz[k]);
        }
    }
}

/// Raw shared output for the 8-copy scheme (see safety notes at use sites).
struct RawOut(*mut f64);
unsafe impl Send for RawOut {}
unsafe impl Sync for RawOut {}
impl RawOut {
    /// # Safety
    /// Caller guarantees index exclusivity per the 8-copy protocol.
    #[inline(always)]
    unsafe fn add(&self, i: usize, v: f64) {
        *self.0.add(i) += v;
    }
}

/// Outcome of a force computation (for benchmark memory reports).
#[derive(Debug, Default, Clone, Copy)]
pub struct ForceStats {
    /// Peak extra bytes allocated by the accumulation scheme.
    pub memory_overhead: usize,
    /// Corner-force contributions applied through spray reducers (both
    /// sweeps). Zero for the sequential and 8-copy schemes, which bypass
    /// the reduction telemetry.
    pub applies: u64,
    /// Of those, contributions that crossed a NUMA-node shard boundary
    /// (see [`spray::RunReport::remote_applies`]). Always zero on a flat
    /// topology.
    pub remote_applies: u64,
}

/// Reusable force-accumulation state for a fixed [`ForceScheme`].
///
/// The timestep loop runs the force scatter twice per cycle (stress +
/// hourglass) for thousands of cycles over the same nodal array shape.
/// Holding the spray reducers' block scratch (and the 8-copy scheme's
/// replica buffer) here means those allocations happen once, on the first
/// sweep, instead of every pass — build one with [`ForceAccum::new`] and
/// thread it through [`crate::step_with`]/[`calc_force_for_nodes_with`].
/// It is deliberately *not* stored in [`Domain`], which stays a plain
/// bitwise-checkpointable value.
pub struct ForceAccum {
    scheme: ForceScheme,
    /// One reducer per pass so each sweep's ownership pattern warms its
    /// own scratch (the two passes scatter identically, but keeping them
    /// separate costs one extra table and avoids any cross-pass reset
    /// subtleties).
    reducers: Option<[ReusableReducer<f64, Sum>; 2]>,
    /// Retained 8-replica buffer for [`ForceScheme::EightCopy`].
    copies: Vec<f64>,
}

impl ForceAccum {
    /// Fresh accumulation state for `scheme` (no scratch retained yet).
    pub fn new(scheme: ForceScheme) -> Self {
        Self::with_policy(scheme, ExecutorPolicy::Fixed)
    }

    /// Like [`ForceAccum::new`] with an explicit [`ExecutorPolicy`] for
    /// the spray reducers: under [`ExecutorPolicy::Adaptive`] each pass's
    /// executor may migrate strategies between timestep sweeps. Ignored
    /// by the non-spray schemes.
    pub fn with_policy(scheme: ForceScheme, policy: ExecutorPolicy) -> Self {
        Self::with_budget(scheme, policy, PlanBudget::UNLIMITED)
    }

    /// Like [`ForceAccum::with_policy`] with a [`PlanBudget`] cap on each
    /// sweep's privatized scratch — the knob LULESH's own 8-copy scheme
    /// lacks (it always pays 8 full nodal replicas). Both the stress and
    /// hourglass passes run under the cap: their element→node scatter
    /// plans demote the costliest shared node blocks to batched
    /// striped-lock updates until the projection fits, and a segmented
    /// scheme (`ForceScheme::Spray(Strategy::Segmented { .. })`) holds
    /// its corner scatters in cache-resident buckets, promoting hot node
    /// blocks to dense copies only within its budget share. Ignored by
    /// the non-spray schemes.
    pub fn with_budget(scheme: ForceScheme, policy: ExecutorPolicy, budget: PlanBudget) -> Self {
        ForceAccum {
            scheme,
            reducers: match scheme {
                ForceScheme::Spray(s) => {
                    let mut pair = [
                        ReusableReducer::with_policy(s, policy.clone()),
                        ReusableReducer::with_policy(s, policy),
                    ];
                    for r in &mut pair {
                        r.set_budget(budget);
                    }
                    Some(pair)
                }
                _ => None,
            },
            copies: Vec::new(),
        }
    }

    /// The scheme this state accumulates with.
    pub fn scheme(&self) -> ForceScheme {
        self.scheme
    }
}

fn run_pass(
    d: &Domain,
    f: &mut [f64],
    pool: &ThreadPool,
    accum: &mut ForceAccum,
    pass: Pass,
) -> ForceStats {
    let nelem = d.nelem();
    match accum.scheme {
        ForceScheme::Seq => {
            let kernel = ForceKernel { d, pass };
            spray::reduce_seq::<f64, Sum, _>(f, 0..nelem, |view, e| kernel.item(view, e));
            ForceStats::default()
        }
        ForceScheme::Spray(_) => {
            let kernel = ForceKernel { d, pass };
            let reducer = &mut accum.reducers.as_mut().expect("spray scheme")[pass as usize];
            // Both passes scatter along the fixed element→node incidence,
            // so one plan per mesh replays across all timesteps. Each pass
            // already has its own reducer (own plan cache); keying by pass
            // keeps the ids meaningful if the reducers are ever merged.
            let report =
                reducer.run_planned(pass as u64, pool, f, 0..nelem, Schedule::default(), &kernel);
            ForceStats {
                memory_overhead: report.memory_overhead,
                applies: report.counters.totals().applies,
                remote_applies: report.remote_applies,
            }
        }
        ForceScheme::EightCopy => {
            let stride = f.len(); // 3 * nnode
                                  // The domain-specific scheme's memory cost: 8 full replicas
                                  // (retained across passes/cycles; re-zeroed, not re-allocated).
            accum.copies.clear();
            accum.copies.resize(8 * stride, 0.0);
            let copies = &mut accum.copies;
            let out = RawOut(copies.as_mut_ptr());
            pool.for_each(0..nelem, Schedule::default(), |e| {
                let (fx, fy, fz) = match pass {
                    Pass::Stress => stress_corner_forces(d, e),
                    Pass::Hourglass => hourglass_corner_forces(d, e),
                };
                let en = &d.mesh.elem_node[e];
                for k in 0..8 {
                    let base = k * stride + en[k] as usize * 3;
                    // SAFETY: a node is local corner k of at most one
                    // element (structured-mesh property, verified in
                    // mesh tests), so replica k's slot for this node is
                    // written by exactly one element — and each element
                    // belongs to one thread.
                    unsafe {
                        out.add(base, fx[k]);
                        out.add(base + 1, fy[k]);
                        out.add(base + 2, fz[k]);
                    }
                }
            });
            // Combination sweep: each f[i] gathers its 8 replicas.
            let fout = RawOut(f.as_mut_ptr());
            let copies_ref = &copies;
            pool.for_each(0..stride, Schedule::default(), |i| {
                let mut acc = 0.0;
                for k in 0..8 {
                    acc += copies_ref[k * stride + i];
                }
                // SAFETY: index i belongs to exactly one schedule chunk.
                unsafe { fout.add(i, acc) };
            });
            ForceStats {
                memory_overhead: 8 * stride * std::mem::size_of::<f64>(),
                applies: 0,
                remote_applies: 0,
            }
        }
    }
}

/// Computes all nodal forces (stress sweep + hourglass sweep) into `d.f`,
/// replacing its previous contents, reusing `accum`'s retained scratch.
pub fn calc_force_for_nodes_with(
    d: &mut Domain,
    pool: &ThreadPool,
    accum: &mut ForceAccum,
) -> ForceStats {
    let mut f = std::mem::take(&mut d.f);
    f.fill(0.0);
    let s1 = run_pass(d, &mut f, pool, accum, Pass::Stress);
    let s2 = run_pass(d, &mut f, pool, accum, Pass::Hourglass);
    d.f = f;
    ForceStats {
        memory_overhead: s1.memory_overhead.max(s2.memory_overhead),
        applies: s1.applies + s2.applies,
        remote_applies: s1.remote_applies + s2.remote_applies,
    }
}

/// One-shot form of [`calc_force_for_nodes_with`] (fresh scratch; loops
/// should build a [`ForceAccum`] once and use the `_with` variant).
pub fn calc_force_for_nodes(d: &mut Domain, pool: &ThreadPool, scheme: ForceScheme) -> ForceStats {
    calc_force_for_nodes_with(d, pool, &mut ForceAccum::new(scheme))
}

/// Computes all nodal forces into `d.f` by submitting the stress and
/// hourglass sweeps as **two concurrent jobs** to a shared
/// [`spray_service::ReductionService`] (whose configuration supplies
/// strategy, schedule and pool — there is no scheme choice here).
///
/// The two sweeps scatter along the same element→node incidence into
/// same-length outputs, so the service coalesces them into a single
/// batched region when its window allows: one plan, one merge schedule,
/// both sweeps' corner forces applied in one parallel phase. Each sweep
/// reduces into its own segment; their sums combine into `d.f`
/// afterwards, which reassociates the stress/hourglass addition exactly
/// like the zero-initialized two-pass accumulation in
/// [`calc_force_for_nodes_with`].
///
/// `class` identifies the mesh shape (use one value per mesh so the
/// recorded incidence plan replays across timesteps).
pub fn calc_force_for_nodes_service(
    d: &mut Domain,
    svc: &spray_service::ReductionService<f64, Sum>,
    class: u64,
) -> ForceStats {
    let nelem = d.nelem();
    let mut f = std::mem::take(&mut d.f);
    f.fill(0.0);
    let flen = f.len();
    let dref: &Domain = d;
    let jobs: Vec<spray_service::Job<'_, f64>> =
        [(Pass::Stress, f), (Pass::Hourglass, vec![0.0; flen])]
            .into_iter()
            .map(|(pass, out)| spray_service::Job {
                // Distinct tenants so both sweeps are head-of-line at once
                // (one tenant would serialize them FIFO, forfeiting the batch).
                tenant: pass as u64,
                class,
                out,
                iters: nelem,
                body: Box::new(move |view, e| {
                    // `ForceKernel::item` inlined: its generic view parameter
                    // cannot take the service's `&mut dyn ReducerView` directly.
                    let (fx, fy, fz) = match pass {
                        Pass::Stress => stress_corner_forces(dref, e),
                        Pass::Hourglass => hourglass_corner_forces(dref, e),
                    };
                    let en = &dref.mesh.elem_node[e];
                    for k in 0..8 {
                        let n = en[k] as usize * 3;
                        view.apply(n, fx[k]);
                        view.apply(n + 1, fy[k]);
                        view.apply(n + 2, fz[k]);
                    }
                }),
            })
            .collect();
    let mut results = svc.run_scoped(jobs);
    let hourglass = results.pop().expect("hourglass job");
    let stress = results.pop().expect("stress job");
    let mut f = stress.out;
    for (fi, hg) in f.iter_mut().zip(&hourglass.out) {
        *fi += hg;
    }
    d.f = f;
    // When the sweeps coalesced into one region its counters already
    // cover both; separate regions are summed.
    let (applies, remote_applies) = if stress.batch_size == 2 && hourglass.batch_size == 2 {
        (
            stress.report.counters.totals().applies,
            stress.report.remote_applies,
        )
    } else {
        (
            stress.report.counters.totals().applies + hourglass.report.counters.totals().applies,
            stress.report.remote_applies + hourglass.report.remote_applies,
        )
    };
    ForceStats {
        memory_overhead: stress
            .report
            .memory_overhead
            .max(hourglass.report.memory_overhead),
        applies,
        remote_applies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Params;

    fn forces_with(scheme: ForceScheme, threads: usize) -> Vec<f64> {
        let mut d = Domain::new(4, Params::default());
        // Perturb velocities so the hourglass sweep produces nonzero work.
        for n in 0..d.nnode() {
            d.xd[n] = ((n * 13 % 7) as f64 - 3.0) * 1e3;
            d.yd[n] = ((n * 5 % 11) as f64 - 5.0) * 1e3;
            d.zd[n] = ((n * 17 % 5) as f64 - 2.0) * 1e3;
        }
        let pool = ThreadPool::new(threads);
        calc_force_for_nodes(&mut d, &pool, scheme);
        d.f
    }

    #[test]
    fn all_schemes_agree_with_sequential() {
        let reference = forces_with(ForceScheme::Seq, 1);
        let scale: f64 = reference.iter().fold(0.0, |a, &b| a.max(b.abs()));
        assert!(scale > 0.0, "reference forces are all zero");
        let schemes = [
            ForceScheme::EightCopy,
            ForceScheme::Spray(Strategy::Dense),
            ForceScheme::Spray(Strategy::Atomic),
            ForceScheme::Spray(Strategy::BlockPrivate { block_size: 64 }),
            ForceScheme::Spray(Strategy::BlockLock { block_size: 64 }),
            ForceScheme::Spray(Strategy::BlockCas { block_size: 64 }),
            ForceScheme::Spray(Strategy::Keeper),
        ];
        for scheme in schemes {
            let f = forces_with(scheme, 4);
            for (i, (&got, &want)) in f.iter().zip(&reference).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9 * scale,
                    "{} differs at {i}: {got} vs {want}",
                    scheme.label()
                );
            }
        }
    }

    #[test]
    fn budgeted_and_segmented_forces_match_sequential() {
        let reference = forces_with(ForceScheme::Seq, 1);
        let scale: f64 = reference.iter().fold(0.0, |a, &b| a.max(b.abs()));
        assert!(scale > 0.0, "reference forces are all zero");

        // Budget ladder on the block plan (zero demotes every shared node
        // block) and the segmented scheme with and without promotion
        // headroom; repeated sweeps also cover the plan-replay path under
        // demotion.
        let configs = [
            (
                ForceScheme::Spray(Strategy::BlockPrivate { block_size: 64 }),
                PlanBudget::new(0),
            ),
            (
                ForceScheme::Spray(Strategy::BlockPrivate { block_size: 64 }),
                PlanBudget::new(4096),
            ),
            (
                ForceScheme::Spray(Strategy::Segmented {
                    bucket_bits: Strategy::bucket_bits_for(64),
                }),
                PlanBudget::UNLIMITED,
            ),
            (
                ForceScheme::Spray(Strategy::Segmented {
                    bucket_bits: Strategy::bucket_bits_for(64),
                }),
                PlanBudget::new(0),
            ),
        ];
        for (scheme, budget) in configs {
            let mut d = Domain::new(4, Params::default());
            for n in 0..d.nnode() {
                d.xd[n] = ((n * 13 % 7) as f64 - 3.0) * 1e3;
                d.yd[n] = ((n * 5 % 11) as f64 - 5.0) * 1e3;
                d.zd[n] = ((n * 17 % 5) as f64 - 2.0) * 1e3;
            }
            let pool = ThreadPool::new(4);
            let mut accum = ForceAccum::with_budget(scheme, ExecutorPolicy::Fixed, budget);
            for step in 0..3 {
                calc_force_for_nodes_with(&mut d, &pool, &mut accum);
                for (i, (&got, &want)) in d.f.iter().zip(&reference).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-9 * scale,
                        "{} budget {budget:?} step {step} differs at {i}: {got} vs {want}",
                        scheme.label()
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_policy_matches_sequential_forces() {
        let reference = forces_with(ForceScheme::Seq, 1);
        let scale: f64 = reference.iter().fold(0.0, |a, &b| a.max(b.abs()));
        assert!(scale > 0.0, "reference forces are all zero");

        let mut d = Domain::new(4, Params::default());
        for n in 0..d.nnode() {
            d.xd[n] = ((n * 13 % 7) as f64 - 3.0) * 1e3;
            d.yd[n] = ((n * 5 % 11) as f64 - 5.0) * 1e3;
            d.zd[n] = ((n * 17 % 5) as f64 - 2.0) * 1e3;
        }
        let pool = ThreadPool::new(4);
        let mut accum = ForceAccum::with_policy(
            ForceScheme::Spray(Strategy::BlockPrivate { block_size: 64 }),
            ExecutorPolicy::Adaptive(spray::AdaptiveConfig::default()),
        );
        // Several timesteps' worth of sweeps so the cost model gets a
        // chance to migrate; every sweep must stay exact either way.
        for step in 0..4 {
            calc_force_for_nodes_with(&mut d, &pool, &mut accum);
            for (i, (&got, &want)) in d.f.iter().zip(&reference).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9 * scale,
                    "adaptive step {step} differs at {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn service_forces_agree_with_sequential() {
        let reference = forces_with(ForceScheme::Seq, 1);
        let scale: f64 = reference.iter().fold(0.0, |a, &b| a.max(b.abs()));
        assert!(scale > 0.0, "reference forces are all zero");

        let mut d = Domain::new(4, Params::default());
        for n in 0..d.nnode() {
            d.xd[n] = ((n * 13 % 7) as f64 - 3.0) * 1e3;
            d.yd[n] = ((n * 5 % 11) as f64 - 5.0) * 1e3;
            d.zd[n] = ((n * 17 % 5) as f64 - 2.0) * 1e3;
        }
        let svc = spray_service::ReductionService::<f64, Sum>::new(spray_service::ServiceConfig {
            threads: 4,
            strategy: Strategy::BlockCas { block_size: 64 },
            batch_window: 2,
            ..spray_service::ServiceConfig::default()
        });
        let mut batched = 0u64;
        for step in 0..4 {
            let stats = calc_force_for_nodes_service(&mut d, &svc, 1);
            assert!(stats.applies > 0, "service sweeps bypassed the reducers");
            batched = svc.shared().batched_regions();
            for (i, (&got, &want)) in d.f.iter().zip(&reference).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9 * scale,
                    "service step {step} differs at {i}: {got} vs {want}"
                );
            }
        }
        assert_eq!(svc.shared().jobs(), 8);
        // Both sweeps of a step are submitted together before either is
        // awaited, so at least some steps must coalesce them. (Timing
        // could in principle split a step's pair; across 4 steps on a
        // blocked submitter that would leave a telltale zero.)
        assert!(batched > 0, "stress+hourglass never shared a region");
    }

    #[test]
    fn global_momentum_balance_of_internal_forces() {
        // Internal forces (stress + hourglass) must sum to zero over the
        // whole mesh: Newton's third law, discretely. This holds per
        // element (below) and therefore globally after the scatter.
        let mut d = Domain::new(4, Params::default());
        for e in 0..d.nelem() {
            d.e[e] = 1.0 + (e % 7) as f64;
            d.update_eos(e);
        }
        for n in 0..d.nnode() {
            d.xd[n] = ((n * 13 % 11) as f64 - 5.0) * 10.0;
            d.yd[n] = ((n * 7 % 13) as f64 - 6.0) * 10.0;
            d.zd[n] = ((n * 3 % 5) as f64 - 2.0) * 10.0;
        }
        let pool = ThreadPool::new(2);
        calc_force_for_nodes(&mut d, &pool, ForceScheme::Seq);
        let (mut fx, mut fy, mut fz) = (0.0f64, 0.0, 0.0);
        let mut scale = 0.0f64;
        for n in 0..d.nnode() {
            fx += d.f[3 * n];
            fy += d.f[3 * n + 1];
            fz += d.f[3 * n + 2];
            scale = scale.max(d.f[3 * n].abs());
        }
        assert!(scale > 0.0);
        assert!(fx.abs() < 1e-9 * scale, "fx = {fx}");
        assert!(fy.abs() < 1e-9 * scale, "fy = {fy}");
        assert!(fz.abs() < 1e-9 * scale, "fz = {fz}");
    }

    #[test]
    fn hourglass_forces_sum_to_zero_per_element() {
        let mut d = Domain::new(3, Params::default());
        d.e.fill(2.0);
        d.update_eos_all();
        for n in 0..d.nnode() {
            d.xd[n] = ((n * 17 % 23) as f64 - 11.0) * 5.0;
        }
        for e in 0..d.nelem() {
            let (fx, fy, fz) = hourglass_corner_forces(&d, e);
            let scale = fx
                .iter()
                .chain(&fy)
                .chain(&fz)
                .fold(0.0f64, |a, &b| a.max(b.abs()))
                .max(1e-300);
            assert!(fx.iter().sum::<f64>().abs() < 1e-9 * scale.max(1.0));
            assert!(fy.iter().sum::<f64>().abs() < 1e-9 * scale.max(1.0));
            assert!(fz.iter().sum::<f64>().abs() < 1e-9 * scale.max(1.0));
        }
    }

    #[test]
    fn force_scheme_parsing() {
        assert_eq!("seq".parse::<ForceScheme>().unwrap(), ForceScheme::Seq);
        assert_eq!(
            "8copy".parse::<ForceScheme>().unwrap(),
            ForceScheme::EightCopy
        );
        assert_eq!(
            "block-lock-512".parse::<ForceScheme>().unwrap(),
            ForceScheme::Spray(Strategy::BlockLock { block_size: 512 })
        );
        assert!("bogus".parse::<ForceScheme>().is_err());
        // Labels round-trip (8copy prints as lulesh-8copy).
        let s = ForceScheme::Spray(Strategy::Keeper);
        assert_eq!(s.label().parse::<ForceScheme>().unwrap(), s);
    }

    #[test]
    fn stress_forces_sum_to_zero_per_element() {
        // Internal stresses exert no net force on the element.
        let d = Domain::new(3, Params::default());
        let (fx, fy, fz) = stress_corner_forces(&d, 0);
        let scale = d.p[0].abs().max(1.0);
        assert!(fx.iter().sum::<f64>().abs() < 1e-9 * scale);
        assert!(fy.iter().sum::<f64>().abs() < 1e-9 * scale);
        assert!(fz.iter().sum::<f64>().abs() < 1e-9 * scale);
    }

    #[test]
    fn hourglass_forces_vanish_for_rigid_motion() {
        // Uniform translation velocity excites no hourglass mode.
        let mut d = Domain::new(3, Params::default());
        for n in 0..d.nnode() {
            d.xd[n] = 3.0;
            d.yd[n] = -1.0;
            d.zd[n] = 0.5;
        }
        for e in 0..d.nelem() {
            let (fx, fy, fz) = hourglass_corner_forces(&d, e);
            for k in 0..8 {
                assert!(fx[k].abs() < 1e-9, "hg fx {k} = {}", fx[k]);
                assert!(fy[k].abs() < 1e-9);
                assert!(fz[k].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hourglass_forces_oppose_hourglass_velocity() {
        // A pure hourglass-mode velocity field must be damped: the force
        // projected on the mode velocity is negative (dissipative).
        let mut d = Domain::new(1, Params::default());
        d.e[0] = 1.0; // give the element a sound speed
        d.update_eos(0);
        let en = d.mesh.elem_node[0];
        for (k, &n) in en.iter().enumerate() {
            d.xd[n as usize] = GAMMA[0][k];
        }
        let (fx, _, _) = hourglass_corner_forces(&d, 0);
        let (xd, _, _) = d.elem_velocities(0);
        let power: f64 = (0..8).map(|k| fx[k] * xd[k]).sum();
        assert!(
            power < 0.0,
            "hourglass filter must dissipate, power={power}"
        );
    }

    #[test]
    fn static_uniform_pressure_forces_balance_in_interior() {
        // With uniform p and no motion, interior nodes feel zero net force.
        let mut d = Domain::new(3, Params::default());
        for e in 0..d.nelem() {
            d.e[e] = 2.0;
            d.update_eos(e);
        }
        let pool = ThreadPool::new(2);
        calc_force_for_nodes(&mut d, &pool, ForceScheme::Seq);
        // Interior node of the 3x3x3 mesh: grid point (1..3)^3 range —
        // count neighbors == 8.
        let np = d.mesh.nx + 1;
        let scale = d.p[0] * d.params.edge * d.params.edge;
        for k in 1..np - 1 {
            for j in 1..np - 1 {
                for i in 1..np - 1 {
                    let n = (k * np + j) * np + i;
                    for c in 0..3 {
                        assert!(
                            d.f[3 * n + c].abs() < 1e-9 * scale,
                            "interior node {n} comp {c}: {}",
                            d.f[3 * n + c]
                        );
                    }
                }
            }
        }
    }
}
