//! Lagrangian leapfrog time integration (LULESH `LagrangeLeapFrog`).
//!
//! Per cycle: nodal forces (the spray-reduced scatter, `forces.rs`) →
//! acceleration → symmetry boundary conditions → velocity → position →
//! element kinematics (volume, characteristic length, volume-change rate)
//! → artificial viscosity (monotonic neighbor-limited by default, plain
//! VNR selectable) → energy work term → gamma-law EOS → next dt. The EOS
//! is simplified relative to real LULESH (see DESIGN.md substitution 4);
//! the data-movement pattern — and in particular the force scatter the
//! paper measures — is preserved, and like LULESH every phase besides the
//! (cheap) boundary fix-ups runs in parallel: DOALL loops for nodal and
//! element updates, a team min-reduction for the time-step constraint.

use crate::domain::{Domain, QMode};
use crate::forces::{calc_force_for_nodes_with, ForceAccum, ForceScheme, ForceStats};
use crate::hex::{char_length, elem_volume};
use crate::qmono;
use ompsim::{Schedule, ThreadPool};

/// Raw shared output for DOALL element/node loops (each index written by
/// exactly one thread — exact-cover property of ompsim schedules).
struct RawF64(*mut f64);
unsafe impl Send for RawF64 {}
unsafe impl Sync for RawF64 {}
impl RawF64 {
    fn new(v: &mut [f64]) -> Self {
        RawF64(v.as_mut_ptr())
    }
    /// # Safety
    /// `i` in bounds; no concurrent access to index `i`.
    #[inline(always)]
    unsafe fn set(&self, i: usize, v: f64) {
        *self.0.add(i) = v;
    }
    /// # Safety
    /// `i` in bounds; no concurrent writer to index `i`.
    #[inline(always)]
    unsafe fn get(&self, i: usize) -> f64 {
        *self.0.add(i)
    }
}

/// Summary of a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Completed cycles.
    pub cycles: usize,
    /// Final simulated time.
    pub final_time: f64,
    /// Final time-step size.
    pub final_dt: f64,
    /// Peak memory overhead of the force-accumulation scheme.
    pub memory_overhead: usize,
    /// Total corner-force contributions applied through spray reducers
    /// over the whole run (zero for non-spray schemes).
    pub applies: u64,
    /// Of those, contributions that crossed a NUMA-node shard boundary
    /// over the whole run (zero on a flat topology).
    pub remote_applies: u64,
    /// Final total (internal + kinetic) energy.
    pub total_energy: f64,
    /// Maximum absolute nodal velocity at the end (sanity/NaN guard).
    pub max_velocity: f64,
}

/// Advances the simulation by one cycle with a fresh [`ForceAccum`].
/// Loops should build the accumulator once and call [`step_with`].
///
/// # Panics
/// Panics if an element inverts (negative volume) — the simulation has
/// gone unstable, as LULESH would abort with `VolumeError`.
pub fn step(d: &mut Domain, pool: &ThreadPool, scheme: ForceScheme) -> ForceStats {
    step_with(d, pool, &mut ForceAccum::new(scheme))
}

/// Advances the simulation by one cycle, reusing `accum`'s retained force
/// scratch. Returns the force-scheme stats.
///
/// # Panics
/// Panics if an element inverts (negative volume) — the simulation has
/// gone unstable, as LULESH would abort with `VolumeError`.
pub fn step_with(d: &mut Domain, pool: &ThreadPool, accum: &mut ForceAccum) -> ForceStats {
    let stats = calc_force_for_nodes_with(d, pool, accum);
    let dt = d.dt;
    let nnode = d.nnode();
    let nelem = d.nelem();

    // --- nodal update: a = f/m, v += a·dt (parallel DOALL) ---
    {
        let mut xd = std::mem::take(&mut d.xd);
        let mut yd = std::mem::take(&mut d.yd);
        let mut zd = std::mem::take(&mut d.zd);
        let (pxd, pyd, pzd) = (
            RawF64::new(&mut xd),
            RawF64::new(&mut yd),
            RawF64::new(&mut zd),
        );
        let dref = &*d;
        pool.for_each(0..nnode, Schedule::default(), |n| {
            let inv_m = dt / dref.nodal_mass[n];
            // SAFETY: node n belongs to exactly one schedule chunk.
            unsafe {
                pxd.set(n, pxd.get(n) + dref.f[3 * n] * inv_m);
                pyd.set(n, pyd.get(n) + dref.f[3 * n + 1] * inv_m);
                pzd.set(n, pzd.get(n) + dref.f[3 * n + 2] * inv_m);
            }
        });
        d.xd = xd;
        d.yd = yd;
        d.zd = zd;
    }
    // Symmetry planes: zero the normal velocity component (cheap, serial).
    for &n in &d.symm_x {
        d.xd[n as usize] = 0.0;
    }
    for &n in &d.symm_y {
        d.yd[n as usize] = 0.0;
    }
    for &n in &d.symm_z {
        d.zd[n as usize] = 0.0;
    }
    // Positions (parallel DOALL).
    {
        let mut x = std::mem::take(&mut d.x);
        let mut y = std::mem::take(&mut d.y);
        let mut z = std::mem::take(&mut d.z);
        let (px, py, pz) = (
            RawF64::new(&mut x),
            RawF64::new(&mut y),
            RawF64::new(&mut z),
        );
        let dref = &*d;
        pool.for_each(0..nnode, Schedule::default(), |n| {
            // SAFETY: node n belongs to exactly one schedule chunk.
            unsafe {
                px.set(n, px.get(n) + dref.xd[n] * dt);
                py.set(n, py.get(n) + dref.yd[n] * dt);
                pz.set(n, pz.get(n) + dref.zd[n] * dt);
            }
        });
        d.x = x;
        d.y = y;
        d.z = z;
    }

    // --- element phase A: kinematics + (monotonic) gradients (parallel) ---
    {
        let mut v = std::mem::take(&mut d.v);
        let mut vdov = std::mem::take(&mut d.vdov);
        let mut arealg = std::mem::take(&mut d.arealg);
        let (pv, pvdov, parealg) = (
            RawF64::new(&mut v),
            RawF64::new(&mut vdov),
            RawF64::new(&mut arealg),
        );
        let dref = &*d;
        pool.for_each(0..nelem, Schedule::default(), |e| {
            let (ex, ey, ez) = dref.elem_coords(e);
            let vol = elem_volume(&ex, &ey, &ez);
            assert!(
                vol > 0.0,
                "element {e} inverted at cycle {} (VolumeError)",
                dref.cycle
            );
            let vnew = vol / dref.volo[e];
            // SAFETY: element e belongs to exactly one schedule chunk.
            unsafe {
                let vold = pv.get(e);
                pvdov.set(e, (vnew - vold) / (vold * dt));
                parealg.set(e, char_length(&ex, &ey, &ez, vol));
                pv.set(e, vnew);
            }
        });
        d.v = v;
        d.vdov = vdov;
        d.arealg = arealg;
    }
    if d.params.q_mode == QMode::Monotonic {
        qmono::calc_gradients_par(d, pool);
    }

    // --- element phase B: viscosity, energy work, EOS (parallel) ---
    {
        let mut q = std::mem::take(&mut d.q);
        let mut en = std::mem::take(&mut d.e);
        let mut p = std::mem::take(&mut d.p);
        let mut ss = std::mem::take(&mut d.ss);
        let (pq, pe, pp, pss) = (
            RawF64::new(&mut q),
            RawF64::new(&mut en),
            RawF64::new(&mut p),
            RawF64::new(&mut ss),
        );
        let dref = &*d;
        let prm = d.params;
        pool.for_each(0..nelem, Schedule::default(), |e| {
            // SAFETY (this whole body): element e belongs to exactly one
            // schedule chunk, so all RawF64 accesses at index e are
            // exclusive.
            unsafe {
                let rho = dref.rho(e);
                let ss_old = pss.get(e);
                let q_old = pq.get(e);
                let vdov = dref.vdov[e];

                let q_new = match prm.q_mode {
                    QMode::Monotonic => qmono::monotonic_q(dref, e, ss_old, rho),
                    QMode::Vnr => {
                        if vdov < 0.0 {
                            let du = dref.arealg[e] * vdov.abs();
                            rho * (prm.qqc * prm.qqc * du * du + prm.qlc * ss_old * du)
                        } else {
                            0.0
                        }
                    }
                };
                pq.set(e, q_new);

                // Energy work term with a predictor–corrector (half-step
                // pressure), the stabilized form LULESH's
                // CalcEnergyForElems uses — a fully explicit update blows
                // up at Sedov-strength pressure ratios.
                let dvol = dref.volo[e] * vdov * pv_old_times_dt(dref, e, dt);
                let inv_m = 1.0 / dref.elem_mass[e];
                let e_old = pe.get(e);
                let p_old = pp.get(e);
                let gamma = dref.gamma(e);
                let e_pred = (e_old - 0.5 * (p_old + q_old) * dvol * inv_m).max(prm.emin);
                let p_half = ((gamma - 1.0) * rho * e_pred).max(prm.pmin);
                let e_new = (e_old - (0.5 * (p_old + p_half) + q_new) * dvol * inv_m).max(prm.emin);
                pe.set(e, e_new);

                // Gamma-law EOS (per-region material).
                let p_new = ((gamma - 1.0) * rho * e_new).max(prm.pmin);
                pp.set(e, p_new);
                pss.set(e, (gamma * p_new / rho).max(1e-20).sqrt());
            }
        });
        d.q = q;
        d.e = en;
        d.p = p;
        d.ss = ss;
    }

    // --- next dt (parallel min-reduction) ---
    d.dt = d.suggested_dt_par(pool).min(d.dt * d.params.dtmax_growth);
    d.time += dt;
    d.cycle += 1;
    stats
}

/// Reconstructs the absolute volume change of element `e` over the step:
/// `ΔV = volo · (vnew − vold)` where `vdov = (vnew − vold)/(vold·dt)`, so
/// `ΔV = volo · vdov · vold · dt` with `vold = vnew / (1 + vdov·dt)`.
#[inline]
fn pv_old_times_dt(d: &Domain, e: usize, dt: f64) -> f64 {
    let vnew = d.v[e];
    let vold = vnew / (1.0 + d.vdov[e] * dt);
    vold * dt
}

/// Runs `cycles` steps and reports summary statistics. Force-accumulation
/// scratch (reducer tables, replica buffers) is built on the first cycle
/// and reused for the rest of the run.
pub fn run(d: &mut Domain, pool: &ThreadPool, scheme: ForceScheme, cycles: usize) -> RunStats {
    let mut accum = ForceAccum::new(scheme);
    let mut mem = 0usize;
    let mut applies = 0u64;
    let mut remote_applies = 0u64;
    for _ in 0..cycles {
        let s = step_with(d, pool, &mut accum);
        mem = mem.max(s.memory_overhead);
        applies += s.applies;
        remote_applies += s.remote_applies;
    }
    let mut stats = run_stats_of(d, mem);
    stats.applies = applies;
    stats.remote_applies = remote_applies;
    stats
}

/// Builds the summary statistics for the current state.
pub(crate) fn run_stats_of(d: &Domain, memory_overhead: usize) -> RunStats {
    let max_velocity = (0..d.nnode())
        .map(|n| (d.xd[n] * d.xd[n] + d.yd[n] * d.yd[n] + d.zd[n] * d.zd[n]).sqrt())
        .fold(0.0f64, f64::max);
    RunStats {
        cycles: d.cycle,
        final_time: d.time,
        final_dt: d.dt,
        memory_overhead,
        applies: 0,
        remote_applies: 0,
        total_energy: d.total_energy(),
        max_velocity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Params;
    use spray::Strategy;

    #[test]
    fn blast_wave_runs_stably() {
        let mut d = Domain::new(6, Params::default());
        let pool = ThreadPool::new(2);
        let stats = run(&mut d, &pool, ForceScheme::Seq, 30);
        assert_eq!(stats.cycles, 30);
        assert!(stats.final_time > 0.0);
        assert!(stats.final_dt > 0.0 && stats.final_dt.is_finite());
        assert!(stats.max_velocity.is_finite());
        assert!(stats.max_velocity > 0.0, "blast should set nodes in motion");
        assert!(d.v.iter().all(|&v| v > 0.0));
        assert!(d.e.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn both_q_modes_run_stably() {
        let pool = ThreadPool::new(2);
        for q_mode in [QMode::Vnr, QMode::Monotonic] {
            let mut d = Domain::new(
                5,
                Params {
                    q_mode,
                    ..Params::default()
                },
            );
            let e0 = d.total_energy();
            let stats = run(&mut d, &pool, ForceScheme::Seq, 25);
            assert!(
                stats.final_dt > 0.0 && stats.final_dt.is_finite(),
                "{q_mode:?}"
            );
            assert!(d.v.iter().all(|&v| v > 0.0), "{q_mode:?}");
            assert!(
                stats.total_energy <= e0 * (1.0 + 1e-9),
                "{q_mode:?}: energy grew"
            );
        }
    }

    #[test]
    fn energy_approximately_conserved() {
        let mut d = Domain::new(6, Params::default());
        let e0 = d.total_energy();
        let pool = ThreadPool::new(2);
        let stats = run(&mut d, &pool, ForceScheme::Seq, 40);
        // The hourglass filter and artificial viscosity are dissipative, so
        // the total may drift down a few percent — but must never grow.
        assert!(
            stats.total_energy <= e0 * (1.0 + 1e-9),
            "energy grew: {e0} -> {}",
            stats.total_energy
        );
        let drift = (e0 - stats.total_energy) / e0;
        assert!(drift < 0.15, "energy drift {:.3}% too large", drift * 100.0);
    }

    #[test]
    fn solution_is_axis_symmetric() {
        // The Sedov setup is symmetric under permuting the three axes;
        // the energy field must inherit that symmetry.
        let nx = 4;
        let mut d = Domain::new(nx, Params::default());
        let pool = ThreadPool::new(2);
        run(&mut d, &pool, ForceScheme::Seq, 20);
        let idx = |i: usize, j: usize, k: usize| (k * nx + j) * nx + i;
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    let a = d.e[idx(i, j, k)];
                    for &b in &[d.e[idx(j, i, k)], d.e[idx(k, j, i)], d.e[idx(i, k, j)]] {
                        assert!(
                            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                            "axis symmetry broken at ({i},{j},{k}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn schemes_produce_identical_trajectories() {
        let pool = ThreadPool::new(4);
        let mut reference = Domain::new(4, Params::default());
        run(&mut reference, &pool, ForceScheme::Seq, 10);

        for scheme in [
            ForceScheme::EightCopy,
            ForceScheme::Spray(Strategy::Atomic),
            ForceScheme::Spray(Strategy::BlockCas { block_size: 128 }),
            ForceScheme::Spray(Strategy::Keeper),
        ] {
            let mut d = Domain::new(4, Params::default());
            run(&mut d, &pool, scheme, 10);
            let scale = reference.e.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            for (i, (&got, &want)) in d.e.iter().zip(&reference.e).enumerate() {
                assert!(
                    (got - want).abs() < 1e-6 * scale,
                    "{} energy differs at {i}: {got} vs {want}",
                    scheme.label()
                );
            }
        }
    }

    #[test]
    fn multi_material_regions_run_and_differ() {
        let pool = ThreadPool::new(2);
        let run_with = |gammas: Vec<f64>| {
            let mut d = Domain::new(5, Params::default());
            let nx = 5;
            // Two materials: stiff gas in the lower-z half.
            d.set_regions(|e| u8::from(e / (nx * nx) < nx / 2), gammas);
            run(&mut d, &pool, ForceScheme::Seq, 15);
            d
        };
        let uniform = run_with(vec![1.4, 1.4]);
        let mixed = run_with(vec![1.4, 5.0 / 3.0]);
        assert!(mixed.e.iter().all(|e| e.is_finite()));
        assert!(mixed.v.iter().all(|&v| v > 0.0));
        // The stiffer material must change the solution.
        let diff: f64 = uniform
            .e
            .iter()
            .zip(&mixed.e)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.0, "region gammas had no effect");
    }

    #[test]
    fn regions_survive_checkpoint_restart() {
        let pool = ThreadPool::new(1);
        let mut d = Domain::new(4, Params::default());
        d.set_regions(|e| (e % 3) as u8, vec![1.4, 1.6, 5.0 / 3.0]);
        run(&mut d, &pool, ForceScheme::Seq, 5);

        let mut buf = Vec::new();
        crate::write_checkpoint(&mut buf, &d).unwrap();
        let restored = crate::read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(restored.region, d.region);
        assert_eq!(restored.region_gamma, d.region_gamma);
    }

    #[test]
    fn eight_copy_reports_replica_memory() {
        let mut d = Domain::new(4, Params::default());
        let pool = ThreadPool::new(2);
        let stats = step(&mut d, &pool, ForceScheme::EightCopy);
        assert_eq!(stats.memory_overhead, 8 * 3 * d.nnode() * 8);
    }
}
