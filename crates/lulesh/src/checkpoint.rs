//! Checkpoint / restart.
//!
//! Serializes the complete simulation state as a line-oriented text format
//! using Rust's shortest-round-trip float formatting, so a write→read
//! cycle reproduces the state **bit for bit** — a restarted run continues
//! exactly where the original would have gone (verified by tests).

use crate::domain::{Domain, Params, QMode};
use crate::mesh::Mesh;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from [`read_checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid checkpoint.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn perr(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Parse(msg.into())
}

const MAGIC: &str = "spray-lulesh-checkpoint v1";

fn write_f64s(out: &mut String, name: &str, vals: &[f64]) {
    let _ = write!(out, "{name}");
    for v in vals {
        // `{}` on f64 prints the shortest string that parses back to the
        // identical bits — the exact-roundtrip property the tests rely on.
        let _ = write!(out, " {v}");
    }
    out.push('\n');
}

/// Writes the complete simulation state.
pub fn write_checkpoint<W: Write>(mut w: W, d: &Domain) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let p = &d.params;
    let q_mode = match p.q_mode {
        QMode::Vnr => "vnr",
        QMode::Monotonic => "monotonic",
    };
    let _ = writeln!(
        out,
        "params {} {} {} {} {} {q_mode} {} {} {} {} {} {} {} {}",
        p.gamma,
        p.rho0,
        p.hgcoef,
        p.qlc,
        p.qqc,
        p.monoq_max_slope,
        p.cfl,
        p.dvovmax,
        p.dtmax_growth,
        p.pmin,
        p.emin,
        p.e0,
        p.edge
    );
    let _ = writeln!(out, "mesh {}", d.mesh.nx);
    let _ = writeln!(out, "clock {} {} {}", d.time, d.dt, d.cycle);
    {
        let _ = write!(out, "region");
        for r in &d.region {
            let _ = write!(out, " {r}");
        }
        out.push('\n');
    }
    write_f64s(&mut out, "region_gamma", &d.region_gamma);
    for (name, vals) in [
        ("x", &d.x),
        ("y", &d.y),
        ("z", &d.z),
        ("xd", &d.xd),
        ("yd", &d.yd),
        ("zd", &d.zd),
        ("e", &d.e),
        ("p", &d.p),
        ("q", &d.q),
        ("v", &d.v),
        ("ss", &d.ss),
        ("vdov", &d.vdov),
        ("arealg", &d.arealg),
    ] {
        write_f64s(&mut out, name, vals);
    }
    w.write_all(out.as_bytes())
}

fn parse_f64s(line: &str, name: &str, expect: usize) -> Result<Vec<f64>, CheckpointError> {
    let mut it = line.split_whitespace();
    let tag = it.next().ok_or_else(|| perr("empty line"))?;
    if tag != name {
        return Err(perr(format!("expected field '{name}', found '{tag}'")));
    }
    let vals: Vec<f64> = it
        .map(|s| s.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| perr(format!("bad float in '{name}': {e}")))?;
    if vals.len() != expect {
        return Err(perr(format!(
            "field '{name}': expected {expect} values, found {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Reads a checkpoint back into a fully initialized [`Domain`].
pub fn read_checkpoint<R: Read>(r: R) -> Result<Domain, CheckpointError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, CheckpointError> {
        lines
            .next()
            .ok_or_else(|| perr("truncated checkpoint"))?
            .map_err(CheckpointError::from)
    };

    if next()? != MAGIC {
        return Err(perr("bad magic line"));
    }

    let pline = next()?;
    let toks: Vec<&str> = pline.split_whitespace().collect();
    if toks.len() != 15 || toks[0] != "params" {
        return Err(perr(format!("bad params line ({} tokens)", toks.len())));
    }
    let f = |i: usize| -> Result<f64, CheckpointError> {
        toks[i]
            .parse::<f64>()
            .map_err(|e| perr(format!("bad params[{i}]: {e}")))
    };
    let q_mode = match toks[6] {
        "vnr" => QMode::Vnr,
        "monotonic" => QMode::Monotonic,
        other => return Err(perr(format!("unknown q_mode '{other}'"))),
    };
    let params = Params {
        gamma: f(1)?,
        rho0: f(2)?,
        hgcoef: f(3)?,
        qlc: f(4)?,
        qqc: f(5)?,
        q_mode,
        monoq_max_slope: f(7)?,
        cfl: f(8)?,
        dvovmax: f(9)?,
        dtmax_growth: f(10)?,
        pmin: f(11)?,
        emin: f(12)?,
        e0: f(13)?,
        edge: f(14)?,
    };

    let mline = next()?;
    let nx: usize = mline
        .strip_prefix("mesh ")
        .ok_or_else(|| perr("missing mesh line"))?
        .trim()
        .parse()
        .map_err(|e| perr(format!("bad mesh size: {e}")))?;
    let _ = Mesh::cube(nx); // validates nx

    let cline = next()?;
    let ctoks: Vec<&str> = cline.split_whitespace().collect();
    if ctoks.len() != 4 || ctoks[0] != "clock" {
        return Err(perr("bad clock line"));
    }
    let time: f64 = ctoks[1]
        .parse()
        .map_err(|e| perr(format!("bad time: {e}")))?;
    let dt: f64 = ctoks[2].parse().map_err(|e| perr(format!("bad dt: {e}")))?;
    let cycle: usize = ctoks[3]
        .parse()
        .map_err(|e| perr(format!("bad cycle: {e}")))?;

    // Rebuild static state (masses, volo, connectivity) from the mesh,
    // then overwrite the dynamic fields.
    let mut d = Domain::new(nx, params);
    let nnode = d.nnode();
    let nelem = d.nelem();
    {
        let rline = next()?;
        let mut it = rline.split_whitespace();
        if it.next() != Some("region") {
            return Err(perr("missing region line"));
        }
        let regions: Vec<u8> = it
            .map(|s| s.parse::<u8>())
            .collect::<Result<_, _>>()
            .map_err(|e| perr(format!("bad region index: {e}")))?;
        if regions.len() != nelem {
            return Err(perr("region length mismatch"));
        }
        d.region = regions;
    }
    d.region_gamma = {
        let gline = next()?;
        let mut it = gline.split_whitespace();
        if it.next() != Some("region_gamma") {
            return Err(perr("missing region_gamma line"));
        }
        it.map(|s| s.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| perr(format!("bad region gamma: {e}")))?
    };
    d.x = parse_f64s(&next()?, "x", nnode)?;
    d.y = parse_f64s(&next()?, "y", nnode)?;
    d.z = parse_f64s(&next()?, "z", nnode)?;
    d.xd = parse_f64s(&next()?, "xd", nnode)?;
    d.yd = parse_f64s(&next()?, "yd", nnode)?;
    d.zd = parse_f64s(&next()?, "zd", nnode)?;
    d.e = parse_f64s(&next()?, "e", nelem)?;
    d.p = parse_f64s(&next()?, "p", nelem)?;
    d.q = parse_f64s(&next()?, "q", nelem)?;
    d.v = parse_f64s(&next()?, "v", nelem)?;
    d.ss = parse_f64s(&next()?, "ss", nelem)?;
    d.vdov = parse_f64s(&next()?, "vdov", nelem)?;
    d.arealg = parse_f64s(&next()?, "arealg", nelem)?;
    d.time = time;
    d.dt = dt;
    d.cycle = cycle;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::ForceScheme;
    use crate::hydro::run;
    use ompsim::ThreadPool;

    fn evolved_domain() -> Domain {
        let mut d = Domain::new(4, Params::default());
        let pool = ThreadPool::new(2);
        run(&mut d, &pool, ForceScheme::Seq, 7);
        d
    }

    fn assert_domains_bit_equal(a: &Domain, b: &Domain) {
        let eq = |x: &[f64], y: &[f64], name: &str| {
            assert_eq!(x.len(), y.len(), "{name} length");
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                assert_eq!(u.to_bits(), v.to_bits(), "{name}[{i}]: {u} vs {v}");
            }
        };
        eq(&a.x, &b.x, "x");
        eq(&a.y, &b.y, "y");
        eq(&a.z, &b.z, "z");
        eq(&a.xd, &b.xd, "xd");
        eq(&a.e, &b.e, "e");
        eq(&a.p, &b.p, "p");
        eq(&a.q, &b.q, "q");
        eq(&a.v, &b.v, "v");
        eq(&a.ss, &b.ss, "ss");
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.dt.to_bits(), b.dt.to_bits());
        assert_eq!(a.cycle, b.cycle);
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let d = evolved_domain();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &d).unwrap();
        let d2 = read_checkpoint(buf.as_slice()).unwrap();
        assert_domains_bit_equal(&d, &d2);
    }

    #[test]
    fn restart_continues_identically() {
        // run 14 == (run 7, checkpoint, restore, run 7 more), bit for bit
        // (the sequential force scheme is deterministic).
        let pool = ThreadPool::new(1);
        let mut straight = Domain::new(4, Params::default());
        run(&mut straight, &pool, ForceScheme::Seq, 14);

        let mut first = Domain::new(4, Params::default());
        run(&mut first, &pool, ForceScheme::Seq, 7);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &first).unwrap();
        let mut resumed = read_checkpoint(buf.as_slice()).unwrap();
        run(&mut resumed, &pool, ForceScheme::Seq, 7);

        assert_domains_bit_equal(&straight, &resumed);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(read_checkpoint("nonsense".as_bytes()).is_err());
        let d = evolved_domain();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &d).unwrap();
        // Truncation.
        let cut = &buf[..buf.len() / 2];
        assert!(read_checkpoint(cut).is_err());
        // Field corruption.
        let text = String::from_utf8(buf).unwrap().replace("\ne ", "\nE ");
        assert!(read_checkpoint(text.as_bytes()).is_err());
    }
}
