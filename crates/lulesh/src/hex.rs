//! Hexahedral element geometry kernels (volume, node normals,
//! characteristic length), following the LULESH 2.0 formulations.

/// Triple product `a · (b × c)`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn triple(ax: f64, ay: f64, az: f64, bx: f64, by: f64, bz: f64, cx: f64, cy: f64, cz: f64) -> f64 {
    ax * (by * cz - bz * cy) + ay * (bz * cx - bx * cz) + az * (bx * cy - by * cx)
}

/// Volume of a hexahedron given its 8 corner coordinates in LULESH local
/// ordering (LULESH `CalcElemVolume`: a sum of three triple products of
/// combined diagonals, divided by 12 — exact for tri-linear hexes).
pub fn elem_volume(x: &[f64; 8], y: &[f64; 8], z: &[f64; 8]) -> f64 {
    let d = |a: usize, b: usize| (x[a] - x[b], y[a] - y[b], z[a] - z[b]);
    let (dx61, dy61, dz61) = d(6, 1);
    let (dx70, dy70, dz70) = d(7, 0);
    let (dx63, dy63, dz63) = d(6, 3);
    let (dx20, dy20, dz20) = d(2, 0);
    let (dx50, dy50, dz50) = d(5, 0);
    let (dx64, dy64, dz64) = d(6, 4);
    let (dx31, dy31, dz31) = d(3, 1);
    let (dx72, dy72, dz72) = d(7, 2);
    let (dx43, dy43, dz43) = d(4, 3);
    let (dx57, dy57, dz57) = d(5, 7);
    let (dx14, dy14, dz14) = d(1, 4);
    let (dx25, dy25, dz25) = d(2, 5);

    let v = triple(
        dx31 + dx72,
        dy31 + dy72,
        dz31 + dz72,
        dx63,
        dy63,
        dz63,
        dx20,
        dy20,
        dz20,
    ) + triple(
        dx43 + dx57,
        dy43 + dy57,
        dz43 + dz57,
        dx64,
        dy64,
        dz64,
        dx70,
        dy70,
        dz70,
    ) + triple(
        dx14 + dx25,
        dy14 + dy25,
        dz14 + dz25,
        dx61,
        dy61,
        dz61,
        dx50,
        dy50,
        dz50,
    );
    v / 12.0
}

/// The six faces of the hex in LULESH's `CalcElemNodeNormals` order
/// (each a quadrilateral of local corner indices, outward-oriented).
const FACES: [[usize; 4]; 6] = [
    [0, 1, 2, 3],
    [0, 4, 5, 1],
    [1, 5, 6, 2],
    [2, 6, 7, 3],
    [3, 7, 4, 0],
    [4, 7, 6, 5],
];

/// Per-node area normals `B` (LULESH `CalcElemNodeNormals`): each face
/// contributes a quarter of its area vector to its four corner nodes.
///
/// `B_k = ∂V/∂x_k`; by the divergence theorem `V = (1/3) Σ_k x_k · B_k`
/// and `Σ_k B_k = 0` — both identities are used as tests and the first
/// lets the hourglass filter reuse `B` as the volume derivative.
pub fn node_normals(x: &[f64; 8], y: &[f64; 8], z: &[f64; 8]) -> ([f64; 8], [f64; 8], [f64; 8]) {
    let mut bx = [0.0f64; 8];
    let mut by = [0.0f64; 8];
    let mut bz = [0.0f64; 8];
    for f in &FACES {
        let [n0, n1, n2, n3] = *f;
        // Two bisecting mid-edge vectors of the quad.
        let b0x = 0.5 * (x[n3] + x[n2] - x[n1] - x[n0]);
        let b0y = 0.5 * (y[n3] + y[n2] - y[n1] - y[n0]);
        let b0z = 0.5 * (z[n3] + z[n2] - z[n1] - z[n0]);
        let b1x = 0.5 * (x[n2] + x[n1] - x[n3] - x[n0]);
        let b1y = 0.5 * (y[n2] + y[n1] - y[n3] - y[n0]);
        let b1z = 0.5 * (z[n2] + z[n1] - z[n3] - z[n0]);
        // Quarter of the face area vector.
        let ax = 0.25 * (b0y * b1z - b0z * b1y);
        let ay = 0.25 * (b0z * b1x - b0x * b1z);
        let az = 0.25 * (b0x * b1y - b0y * b1x);
        for &n in f {
            bx[n] += ax;
            by[n] += ay;
            bz[n] += az;
        }
    }
    (bx, by, bz)
}

/// Squared-ish face measure used by `char_length` (LULESH `AreaFace`):
/// returns `(4·area)²` for planar quads.
#[inline]
fn area_face(x: &[f64; 8], y: &[f64; 8], z: &[f64; 8], f: &[usize; 4]) -> f64 {
    let [n0, n1, n2, n3] = *f;
    let fx = (x[n2] - x[n0]) - (x[n3] - x[n1]);
    let fy = (y[n2] - y[n0]) - (y[n3] - y[n1]);
    let fz = (z[n2] - z[n0]) - (z[n3] - z[n1]);
    let gx = (x[n2] - x[n0]) + (x[n3] - x[n1]);
    let gy = (y[n2] - y[n0]) + (y[n3] - y[n1]);
    let gz = (z[n2] - z[n0]) + (z[n3] - z[n1]);
    (fx * fx + fy * fy + fz * fz) * (gx * gx + gy * gy + gz * gz)
        - (fx * gx + fy * gy + fz * gz).powi(2)
}

/// Element characteristic length (LULESH `CalcElemCharacteristicLength`):
/// `4·V / sqrt(max face measure)` — equals the edge length for a cube.
pub fn char_length(x: &[f64; 8], y: &[f64; 8], z: &[f64; 8], volume: f64) -> f64 {
    let mut max_area = 0.0f64;
    for f in &FACES {
        max_area = max_area.max(area_face(x, y, z, f));
    }
    4.0 * volume / max_area.sqrt()
}

/// The four hourglass base vectors Γ (LULESH `CalcFBHourglassForceForElems`).
pub const GAMMA: [[f64; 8]; 4] = [
    [1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0],
    [1.0, -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0],
    [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0],
];

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cube() -> ([f64; 8], [f64; 8], [f64; 8]) {
        (
            [0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        )
    }

    fn scaled(s: f64) -> ([f64; 8], [f64; 8], [f64; 8]) {
        let (x, y, z) = unit_cube();
        (x.map(|v| v * s), y.map(|v| v * s), z.map(|v| v * s))
    }

    #[test]
    fn unit_cube_volume() {
        let (x, y, z) = unit_cube();
        assert!((elem_volume(&x, &y, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_cube_volume() {
        let (x, y, z) = scaled(2.5);
        assert!((elem_volume(&x, &y, &z) - 2.5f64.powi(3)).abs() < 1e-10);
    }

    #[test]
    fn translated_volume_invariant() {
        let (x, y, z) = unit_cube();
        let xt = x.map(|v| v + 7.0);
        let yt = y.map(|v| v - 3.0);
        let zt = z.map(|v| v + 0.5);
        assert!((elem_volume(&xt, &yt, &zt) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sheared_volume() {
        // Shear x by z: volume preserved (det of shear = 1).
        let (x, y, z) = unit_cube();
        let xs: [f64; 8] = std::array::from_fn(|k| x[k] + 0.3 * z[k]);
        assert!((elem_volume(&xs, &y, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normals_sum_to_zero() {
        let (x, y, z) = unit_cube();
        let (bx, by, bz) = node_normals(&x, &y, &z);
        assert!(bx.iter().sum::<f64>().abs() < 1e-12);
        assert!(by.iter().sum::<f64>().abs() < 1e-12);
        assert!(bz.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn divergence_theorem_ties_normals_to_volume() {
        // V = (1/3) Σ x_k · B_k, for the cube and for a distorted hex.
        let check = |x: &[f64; 8], y: &[f64; 8], z: &[f64; 8]| {
            let v = elem_volume(x, y, z);
            let (bx, by, bz) = node_normals(x, y, z);
            let v2: f64 = (0..8)
                .map(|k| (x[k] * bx[k] + y[k] * by[k] + z[k] * bz[k]) / 3.0)
                .sum();
            assert!(
                (v - v2).abs() < 1e-10 * v.abs().max(1.0),
                "volume {v} vs divergence {v2}"
            );
            assert!(v > 0.0, "volume must be positive, got {v}");
        };
        let (x, y, z) = unit_cube();
        check(&x, &y, &z);
        // Mild random-ish distortion that keeps the hex valid.
        let dx: [f64; 8] = std::array::from_fn(|k| x[k] + 0.05 * ((k * 7 % 5) as f64 - 2.0) / 2.0);
        let dy: [f64; 8] = std::array::from_fn(|k| y[k] + 0.04 * ((k * 3 % 7) as f64 - 3.0) / 3.0);
        let dz: [f64; 8] = std::array::from_fn(|k| z[k] + 0.03 * ((k * 5 % 3) as f64 - 1.0));
        check(&dx, &dy, &dz);
    }

    #[test]
    fn char_length_of_cube_is_edge() {
        let (x, y, z) = scaled(0.75);
        let v = elem_volume(&x, &y, &z);
        assert!((char_length(&x, &y, &z, v) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gamma_modes_orthogonal_to_rigid_motion() {
        // Each hourglass mode must be orthogonal to the constant vector
        // (translation) for the cube.
        for g in &GAMMA {
            assert_eq!(g.iter().sum::<f64>(), 0.0);
        }
        // And to the linear coordinate fields on the reference cube.
        let (x, y, z) = unit_cube();
        for g in &GAMMA {
            for coords in [&x, &y, &z] {
                let dot: f64 = (0..8).map(|k| g[k] * coords[k]).sum();
                assert_eq!(dot, 0.0, "gamma not orthogonal to linear field");
            }
        }
    }
}
