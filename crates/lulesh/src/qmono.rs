//! Monotonic artificial viscosity (LULESH `CalcMonotonicQGradientsForElems`
//! + `CalcMonotonicQRegionForElems`).
//!
//! The von Neumann–Richtmyer form adds viscosity wherever an element
//! compresses — including in smooth flow, where it over-damps. LULESH's
//! monotonic Q limits the viscosity with neighbor gradient ratios: per
//! principal direction (ξ, η, ζ) a slope-limiter factor φ ∈ [0, max]
//! measures how *linear* the velocity field is across the element and its
//! face neighbors; for perfectly linear (smooth) fields φ = 1 and the
//! viscosity vanishes, while at discontinuities (shock fronts) φ → 0 and
//! full viscosity applies.
//!
//! Boundary handling matches the Sedov setup: symmetry planes on the low
//! sides mirror the element's own gradient, free surfaces on the high
//! sides contribute zero.

use crate::domain::Domain;

const PTINY: f64 = 1e-36;

/// Directional gradients of one element, plus its characteristic widths.
struct ElemGradients {
    delv: [f64; 3],
    delx: [f64; 3],
}

/// Sum of four array elements selected by index.
#[inline]
fn sum4(a: &[f64; 8], i: [usize; 4]) -> f64 {
    a[i[0]] + a[i[1]] + a[i[2]] + a[i[3]]
}

/// Per-element velocity gradients along the three principal directions
/// (LULESH `CalcMonotonicQGradientsForElems`, one element).
fn gradients_of(
    x: &[f64; 8],
    y: &[f64; 8],
    z: &[f64; 8],
    xv: &[f64; 8],
    yv: &[f64; 8],
    zv: &[f64; 8],
    volume: f64,
) -> ElemGradients {
    // Face index sets per principal direction (+face, -face) in LULESH
    // local node ordering.
    const PLUS: [[usize; 4]; 3] = [
        [1, 2, 6, 5], // +ξ
        [3, 2, 6, 7], // +η
        [4, 5, 6, 7], // +ζ
    ];
    const MINUS: [[usize; 4]; 3] = [
        [0, 3, 7, 4], // -ξ
        [0, 1, 5, 4], // -η
        [0, 1, 2, 3], // -ζ
    ];

    let norm = 1.0 / (volume + PTINY);

    // Direction vectors: quarter of (sum of + face) - (sum of - face).
    let dir = |c: &[f64; 8], d: usize| 0.25 * (sum4(c, PLUS[d]) - sum4(c, MINUS[d]));
    let dx: [f64; 3] = std::array::from_fn(|d| dir(x, d));
    let dy: [f64; 3] = std::array::from_fn(|d| dir(y, d));
    let dz: [f64; 3] = std::array::from_fn(|d| dir(z, d));

    let mut delv = [0.0f64; 3];
    let mut delx = [0.0f64; 3];
    for d in 0..3 {
        // Area vector of direction d = cross product of the other two
        // direction vectors (ξ: η×ζ, η: ζ×ξ, ζ: ξ×η).
        let (j, k) = ([(1, 2), (2, 0), (0, 1)])[d];
        let ax = dy[j] * dz[k] - dz[j] * dy[k];
        let ay = dz[j] * dx[k] - dx[j] * dz[k];
        let az = dx[j] * dy[k] - dy[j] * dx[k];
        let a_len = (ax * ax + ay * ay + az * az).sqrt();
        delx[d] = volume / (a_len + PTINY);

        // Velocity difference across the d faces, projected on the
        // (volume-normalized) area vector.
        let dvx = dir(xv, d);
        let dvy = dir(yv, d);
        let dvz = dir(zv, d);
        delv[d] = (ax * dvx + ay * dvy + az * dvz) * norm;
    }
    ElemGradients { delv, delx }
}

/// Fills `d.delv_*` / `d.delx_*` for all elements from current coordinates
/// and velocities (sequential; used by tests).
#[cfg(test)]
pub(crate) fn calc_gradients(d: &mut Domain) {
    for e in 0..d.nelem() {
        let (x, y, z) = d.elem_coords(e);
        let (xv, yv, zv) = d.elem_velocities(e);
        let volume = d.volo[e] * d.v[e];
        let g = gradients_of(&x, &y, &z, &xv, &yv, &zv, volume);
        d.delv_xi[e] = g.delv[0];
        d.delv_eta[e] = g.delv[1];
        d.delv_zeta[e] = g.delv[2];
        d.delx_xi[e] = g.delx[0];
        d.delx_eta[e] = g.delx[1];
        d.delx_zeta[e] = g.delx[2];
    }
}

/// Parallel variant of [`calc_gradients`] (DOALL over elements).
pub(crate) fn calc_gradients_par(d: &mut Domain, pool: &ompsim::ThreadPool) {
    struct P(*mut f64);
    unsafe impl Send for P {}
    unsafe impl Sync for P {}

    let mut dvx = std::mem::take(&mut d.delv_xi);
    let mut dve = std::mem::take(&mut d.delv_eta);
    let mut dvz = std::mem::take(&mut d.delv_zeta);
    let mut dxx = std::mem::take(&mut d.delx_xi);
    let mut dxe = std::mem::take(&mut d.delx_eta);
    let mut dxz = std::mem::take(&mut d.delx_zeta);
    let ptrs = [
        P(dvx.as_mut_ptr()),
        P(dve.as_mut_ptr()),
        P(dvz.as_mut_ptr()),
        P(dxx.as_mut_ptr()),
        P(dxe.as_mut_ptr()),
        P(dxz.as_mut_ptr()),
    ];
    let dref = &*d;
    pool.for_each(0..d.nelem(), ompsim::Schedule::default(), |e| {
        let (x, y, z) = dref.elem_coords(e);
        let (xv, yv, zv) = dref.elem_velocities(e);
        let volume = dref.volo[e] * dref.v[e];
        let g = gradients_of(&x, &y, &z, &xv, &yv, &zv, volume);
        // SAFETY: element e belongs to exactly one schedule chunk.
        unsafe {
            *ptrs[0].0.add(e) = g.delv[0];
            *ptrs[1].0.add(e) = g.delv[1];
            *ptrs[2].0.add(e) = g.delv[2];
            *ptrs[3].0.add(e) = g.delx[0];
            *ptrs[4].0.add(e) = g.delx[1];
            *ptrs[5].0.add(e) = g.delx[2];
        }
    });
    d.delv_xi = dvx;
    d.delv_eta = dve;
    d.delv_zeta = dvz;
    d.delx_xi = dxx;
    d.delx_eta = dxe;
    d.delx_zeta = dxz;
}

/// The slope limiter for one direction: φ from the element gradient and
/// its two face-neighbor gradients (LULESH `CalcMonotonicQRegionForElems`).
#[inline]
fn phi(delv: f64, delvm: f64, delvp: f64, max_slope: f64) -> f64 {
    let norm = 1.0 / (delv + PTINY);
    let m = delvm * norm;
    let p = delvp * norm;
    let mut phi = 0.5 * (m + p);
    if m < phi {
        phi = m;
    }
    if p < phi {
        phi = p;
    }
    phi.clamp(0.0, max_slope)
}

/// Monotonic-limited artificial viscosity of element `e`, given its
/// (beginning-of-step) sound speed and current density. Requires
/// [`calc_gradients`] to have run for the current state.
pub(crate) fn monotonic_q(d: &Domain, e: usize, ss: f64, rho: f64) -> f64 {
    if d.vdov[e] >= 0.0 {
        return 0.0;
    }
    let nb = d.mesh.elem_neighbors(e);
    // Per direction: (-neighbor gradient, +neighbor gradient) with the
    // Sedov boundary rules (symmetry mirror on low sides, free 0 on high).
    let grad = [&d.delv_xi, &d.delv_eta, &d.delv_zeta];
    let delx = [d.delx_xi[e], d.delx_eta[e], d.delx_zeta[e]];

    let mut qlin_sum = 0.0;
    let mut qquad_sum = 0.0;
    for dir in 0..3 {
        let delv = grad[dir][e];
        let delvm = match nb[2 * dir] {
            Some(n) => grad[dir][n as usize],
            None => delv, // symmetry plane: mirror
        };
        let delvp = match nb[2 * dir + 1] {
            Some(n) => grad[dir][n as usize],
            None => 0.0, // free surface
        };
        let phi_d = phi(delv, delvm, delvp, d.params.monoq_max_slope);
        // Compression-only: positive (expanding) components contribute 0.
        let delvx = (delv * delx[dir]).min(0.0);
        qlin_sum += delvx * (1.0 - phi_d);
        qquad_sum += delvx * delvx * (1.0 - phi_d * phi_d);
    }
    // qlin_sum ≤ 0 on compression, so the linear term is ≥ 0; LULESH
    // scales it by the sound speed.
    let qlin = -d.params.qlc * rho * ss * qlin_sum;
    let qquad = d.params.qqc * d.params.qqc * rho * qquad_sum;
    (qlin + qquad).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Params;

    fn cube_domain(nx: usize) -> Domain {
        Domain::new(nx, Params::default())
    }

    fn set_velocity(d: &mut Domain, f: impl Fn(f64, f64, f64) -> (f64, f64, f64)) {
        for n in 0..d.nnode() {
            let (vx, vy, vz) = f(d.x[n], d.y[n], d.z[n]);
            d.xd[n] = vx;
            d.yd[n] = vy;
            d.zd[n] = vz;
        }
    }

    #[test]
    fn rigid_translation_has_zero_gradients() {
        let mut d = cube_domain(4);
        set_velocity(&mut d, |_, _, _| (3.0, -1.0, 0.5));
        calc_gradients(&mut d);
        for e in 0..d.nelem() {
            assert!(d.delv_xi[e].abs() < 1e-12);
            assert!(d.delv_eta[e].abs() < 1e-12);
            assert!(d.delv_zeta[e].abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_compression_gradient_matches_divergence() {
        // v = -α·x ⇒ ∂vx/∂x = -α along ξ, 0 along η/ζ.
        let alpha = 0.4;
        let mut d = cube_domain(4);
        set_velocity(&mut d, |x, _, _| (-alpha * x, 0.0, 0.0));
        calc_gradients(&mut d);
        let h = d.params.edge / 4.0;
        for e in 0..d.nelem() {
            // delv is the velocity gradient ∂vx/∂x = -α (delv·delx is the
            // velocity jump across the element used by the viscosity).
            assert!(
                (d.delv_xi[e] - (-alpha)).abs() < 1e-9,
                "delv_xi = {} vs {}",
                d.delv_xi[e],
                -alpha
            );
            assert!(d.delv_eta[e].abs() < 1e-12);
            assert!(d.delv_zeta[e].abs() < 1e-12);
            assert!((d.delx_xi[e] - h).abs() < 1e-9);
        }
    }

    #[test]
    fn limiter_kills_q_in_smooth_compression() {
        // Linear velocity field: neighbors see the same gradient, φ = 1,
        // so the monotonic q vanishes in the interior (the whole point of
        // the limiter vs. plain VNR).
        let mut d = cube_domain(6);
        set_velocity(&mut d, |x, y, z| (-0.3 * x, -0.3 * y, -0.3 * z));
        calc_gradients(&mut d);
        for e in 0..d.nelem() {
            d.vdov[e] = -0.9; // mark as compressing
            d.ss[e] = 1.0;
        }
        // Interior element (neighbors on all sides):
        let nx = 6;
        let interior = (2 * nx + 2) * nx + 2;
        let q = monotonic_q(&d, interior, 1.0, d.rho(interior));
        assert!(q.abs() < 1e-9, "interior q = {q}");
    }

    #[test]
    fn shock_front_gets_viscosity() {
        // Velocity step: left half rushes right, right half at rest;
        // elements at the interface compress non-smoothly ⇒ q > 0 there.
        let nx = 6;
        let mut d = cube_domain(nx);
        let mid = d.params.edge / 2.0;
        set_velocity(&mut d, |x, _, _| {
            (if x < mid { 1.0 } else { 0.0 }, 0.0, 0.0)
        });
        calc_gradients(&mut d);
        for e in 0..d.nelem() {
            d.vdov[e] = -0.5;
            d.ss[e] = 1.0;
        }
        // The interface column is at i = nx/2 - 1 (its +x face sees the
        // velocity jump).
        let e_front = (2 * nx + 2) * nx + (nx / 2 - 1);
        let e_far = (2 * nx + 2) * nx; // i = 0, smooth region
        let q_front = monotonic_q(&d, e_front, 1.0, d.rho(e_front));
        let q_far = monotonic_q(&d, e_far, 1.0, d.rho(e_far));
        assert!(q_front > 0.0, "front q = {q_front}");
        assert!(
            q_front > 10.0 * q_far.max(1e-30),
            "front {q_front} vs far {q_far}"
        );
    }

    #[test]
    fn expansion_has_no_viscosity() {
        let mut d = cube_domain(4);
        set_velocity(&mut d, |x, y, z| (0.2 * x, 0.2 * y, 0.2 * z));
        calc_gradients(&mut d);
        for e in 0..d.nelem() {
            d.vdov[e] = 0.9; // expanding
        }
        for e in 0..d.nelem() {
            assert_eq!(monotonic_q(&d, e, 1.0, d.rho(e)), 0.0);
        }
    }

    #[test]
    fn phi_limiter_bounds() {
        for (delv, m, p) in [
            (1.0, 1.0, 1.0),
            (1.0, 0.0, 2.0),
            (-1.0, 1.0, 1.0),
            (1.0, -5.0, 3.0),
        ] {
            let f = phi(delv, m, p, 1.0);
            assert!((0.0..=1.0).contains(&f), "phi({delv},{m},{p}) = {f}");
        }
        // Perfectly smooth: phi = 1.
        assert!((phi(2.0, 2.0, 2.0, 1.0) - 1.0).abs() < 1e-12);
        // Opposing-sign neighbor: phi = 0 (full viscosity).
        assert_eq!(phi(1.0, -1.0, 1.0, 1.0), 0.0);
    }
}
