//! Standalone LULESH-proxy driver, mirroring how the paper runs LULESH
//! 2.0 as "a standalone application" timed by an external script.
//!
//! ```sh
//! cargo run --release -p spray-lulesh --bin lulesh_proxy -- \
//!     --nx 30 --iters 20 --threads 4 --scheme block-lock
//! ```

use ompsim::ThreadPool;
use spray::Strategy;
use spray_lulesh::{run, Domain, ForceScheme, Params};
use std::time::Instant;

fn parse_scheme(name: &str) -> ForceScheme {
    match name {
        "seq" => ForceScheme::Seq,
        "8copy" => ForceScheme::EightCopy,
        "dense" => ForceScheme::Spray(Strategy::Dense),
        "atomic" => ForceScheme::Spray(Strategy::Atomic),
        "block-private" => ForceScheme::Spray(Strategy::BlockPrivate { block_size: 1024 }),
        "block-lock" => ForceScheme::Spray(Strategy::BlockLock { block_size: 1024 }),
        "block-cas" => ForceScheme::Spray(Strategy::BlockCas { block_size: 1024 }),
        "keeper" => ForceScheme::Spray(Strategy::Keeper),
        "log" => ForceScheme::Spray(Strategy::Log),
        // Anything else goes through the full scheme grammar, so every
        // spray strategy label works (segmented-10, hybrid-64-t2, ...).
        other => other.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            eprintln!(
                "choices: seq 8copy dense atomic block-private block-lock block-cas keeper log \
                 or any spray strategy label (e.g. segmented-10, hybrid-1024-t2)"
            );
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut nx = 30usize;
    let mut iters = 20usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scheme = ForceScheme::Spray(Strategy::BlockLock { block_size: 1024 });

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--nx" => nx = val("--nx").parse().expect("bad --nx"),
            "--iters" => iters = val("--iters").parse().expect("bad --iters"),
            "--threads" => threads = val("--threads").parse().expect("bad --threads"),
            "--scheme" => scheme = parse_scheme(&val("--scheme")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Running problem size {nx}^3 per domain for a maximum of {iters} iterations");
    println!("Force accumulation scheme: {}", scheme.label());
    println!("Num threads: {threads}\n");

    let pool = ThreadPool::new(threads);
    let mut d = Domain::new(nx, Params::default());
    let t0 = Instant::now();
    let stats = run(&mut d, &pool, scheme, iters);
    let elapsed = t0.elapsed().as_secs_f64();

    // Output block modeled on LULESH 2.0's final report.
    println!("Run completed:");
    println!("   Problem size        =  {nx}");
    println!("   Iteration count     =  {}", stats.cycles);
    println!("   Final simulated time = {:.6e}", stats.final_time);
    println!("   Final origin energy  = {:.6e}", d.e[0]);
    println!("   Total energy         = {:.6e}", stats.total_energy);
    println!();
    println!("Elapsed time         = {elapsed:>10.2} (s)");
    println!(
        "Grind time (us/z/c)  = {:>10.4} (per dom)",
        elapsed * 1e6 / (d.nelem() as f64 * stats.cycles as f64)
    );
    println!(
        "Reduction mem overhead = {:.2} MiB",
        stats.memory_overhead as f64 / (1024.0 * 1024.0)
    );
}
