//! Legacy-VTK output of the simulation state, for visualization in
//! ParaView/VisIt (the way LULESH runs are usually inspected).
//!
//! Writes an ASCII `STRUCTURED_GRID` dataset with nodal point data
//! (velocity magnitude) and per-element cell data (energy, pressure,
//! relative volume, artificial viscosity).

use crate::domain::Domain;
use std::io::Write;

/// Writes the current state as a legacy VTK structured grid.
pub fn write_vtk<W: Write>(mut w: W, d: &Domain) -> std::io::Result<()> {
    let np = d.mesh.nx + 1;
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "spray-lulesh cycle {} time {:.6e}", d.cycle, d.time)?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_GRID")?;
    writeln!(w, "DIMENSIONS {np} {np} {np}")?;
    writeln!(w, "POINTS {} double", d.nnode())?;
    for n in 0..d.nnode() {
        writeln!(w, "{:.9e} {:.9e} {:.9e}", d.x[n], d.y[n], d.z[n])?;
    }

    writeln!(w, "POINT_DATA {}", d.nnode())?;
    writeln!(w, "SCALARS speed double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for n in 0..d.nnode() {
        let s = (d.xd[n] * d.xd[n] + d.yd[n] * d.yd[n] + d.zd[n] * d.zd[n]).sqrt();
        writeln!(w, "{s:.9e}")?;
    }

    writeln!(w, "CELL_DATA {}", d.nelem())?;
    for (name, field) in [
        ("energy", &d.e),
        ("pressure", &d.p),
        ("viscosity", &d.q),
        ("rel_volume", &d.v),
    ] {
        writeln!(w, "SCALARS {name} double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for value in field.iter() {
            writeln!(w, "{value:.9e}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Params;
    use crate::forces::ForceScheme;
    use crate::hydro::run;
    use ompsim::ThreadPool;

    #[test]
    fn vtk_output_is_structurally_valid() {
        let mut d = Domain::new(3, Params::default());
        let pool = ThreadPool::new(2);
        run(&mut d, &pool, ForceScheme::Seq, 3);

        let mut buf = Vec::new();
        write_vtk(&mut buf, &d).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();

        assert_eq!(lines[0], "# vtk DataFile Version 3.0");
        assert!(lines[1].contains("cycle 3"));
        assert!(text.contains("DIMENSIONS 4 4 4"));
        assert!(text.contains(&format!("POINTS {} double", d.nnode())));
        assert!(text.contains(&format!("POINT_DATA {}", d.nnode())));
        assert!(text.contains(&format!("CELL_DATA {}", d.nelem())));
        for name in ["speed", "energy", "pressure", "viscosity", "rel_volume"] {
            assert!(text.contains(&format!("SCALARS {name} double 1")), "{name}");
        }

        // Count values: POINTS has nnode coordinate triples, each scalar
        // field has the right number of entries.
        let points_idx = lines.iter().position(|l| l.starts_with("POINTS")).unwrap();
        for l in &lines[points_idx + 1..points_idx + 1 + d.nnode()] {
            assert_eq!(l.split_whitespace().count(), 3);
        }
        // All numbers parse.
        let energy_idx = lines
            .iter()
            .position(|l| l.starts_with("SCALARS energy"))
            .unwrap();
        for l in &lines[energy_idx + 2..energy_idx + 2 + d.nelem()] {
            l.parse::<f64>().unwrap();
        }
    }
}
