//! Structured hexahedral mesh.
//!
//! LULESH models an unstructured mesh but initializes it as a structured
//! `nx³`-element cube; we keep the indirection (`elem → 8 node ids`) so the
//! force sweeps have the same data-dependent scatter pattern, but build the
//! connectivity for the structured cube.

/// Element-to-node connectivity of an `nx × nx × nx` hexahedral mesh.
pub struct Mesh {
    /// Elements per edge.
    pub nx: usize,
    /// Total elements (`nx³`).
    pub nelem: usize,
    /// Total nodes (`(nx+1)³`).
    pub nnode: usize,
    /// Corner node ids of each element, in LULESH local ordering
    /// (counter-clockwise bottom face 0-3, then top face 4-7).
    pub elem_node: Vec<[u32; 8]>,
}

impl Mesh {
    /// Builds the structured cube mesh.
    ///
    /// # Panics
    /// Panics if `nx == 0` or the node count would overflow `u32`.
    pub fn cube(nx: usize) -> Self {
        assert!(nx > 0, "mesh needs at least one element per edge");
        let np = nx + 1;
        let nnode = np * np * np;
        assert!(
            nnode <= u32::MAX as usize,
            "mesh too large for u32 node ids"
        );
        let nelem = nx * nx * nx;
        let node_id = |i: usize, j: usize, k: usize| -> u32 { ((k * np + j) * np + i) as u32 };

        let mut elem_node = Vec::with_capacity(nelem);
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    elem_node.push([
                        node_id(i, j, k),
                        node_id(i + 1, j, k),
                        node_id(i + 1, j + 1, k),
                        node_id(i, j + 1, k),
                        node_id(i, j, k + 1),
                        node_id(i + 1, j, k + 1),
                        node_id(i + 1, j + 1, k + 1),
                        node_id(i, j + 1, k + 1),
                    ]);
                }
            }
        }
        Mesh {
            nx,
            nelem,
            nnode,
            elem_node,
        }
    }

    /// Face-neighbor element ids of element `e` in the order
    /// `[-x, +x, -y, +y, -z, +z]`; `None` at domain boundaries.
    /// Used by the monotonic-Q limiter (LULESH's `lxim/lxip/letam/…`).
    pub fn elem_neighbors(&self, e: usize) -> [Option<u32>; 6] {
        let nx = self.nx;
        let i = e % nx;
        let j = (e / nx) % nx;
        let k = e / (nx * nx);
        let id = |i: usize, j: usize, k: usize| ((k * nx + j) * nx + i) as u32;
        [
            (i > 0).then(|| id(i - 1, j, k)),
            (i + 1 < nx).then(|| id(i + 1, j, k)),
            (j > 0).then(|| id(i, j - 1, k)),
            (j + 1 < nx).then(|| id(i, j + 1, k)),
            (k > 0).then(|| id(i, j, k - 1)),
            (k + 1 < nx).then(|| id(i, j, k + 1)),
        ]
    }

    /// Node ids lying on the `x = 0` symmetry plane.
    pub fn symm_x(&self) -> Vec<u32> {
        self.plane_nodes(|i, _, _| i == 0)
    }

    /// Node ids lying on the `y = 0` symmetry plane.
    pub fn symm_y(&self) -> Vec<u32> {
        self.plane_nodes(|_, j, _| j == 0)
    }

    /// Node ids lying on the `z = 0` symmetry plane.
    pub fn symm_z(&self) -> Vec<u32> {
        self.plane_nodes(|_, _, k| k == 0)
    }

    fn plane_nodes(&self, pred: impl Fn(usize, usize, usize) -> bool) -> Vec<u32> {
        let np = self.nx + 1;
        let mut out = Vec::new();
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    if pred(i, j, k) {
                        out.push(((k * np + j) * np + i) as u32);
                    }
                }
            }
        }
        out
    }

    /// Initial nodal coordinates for a cube of physical edge length `edge`.
    pub fn coordinates(&self, edge: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let np = self.nx + 1;
        let h = edge / self.nx as f64;
        let mut x = Vec::with_capacity(self.nnode);
        let mut y = Vec::with_capacity(self.nnode);
        let mut z = Vec::with_capacity(self.nnode);
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    x.push(i as f64 * h);
                    y.push(j as f64 * h);
                    z.push(k as f64 * h);
                }
            }
        }
        (x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let m = Mesh::cube(3);
        assert_eq!(m.nelem, 27);
        assert_eq!(m.nnode, 64);
        assert_eq!(m.elem_node.len(), 27);
    }

    #[test]
    fn connectivity_within_bounds_and_distinct() {
        let m = Mesh::cube(4);
        for en in &m.elem_node {
            let mut seen = std::collections::HashSet::new();
            for &n in en {
                assert!((n as usize) < m.nnode);
                assert!(seen.insert(n), "duplicate corner node");
            }
        }
    }

    #[test]
    fn each_node_is_corner_c_of_at_most_one_element() {
        // The geometric property that makes LULESH's 8-copy domain scheme
        // race-free: for a fixed local corner c, every node appears at most
        // once across all elements.
        let m = Mesh::cube(4);
        for c in 0..8 {
            let mut seen = std::collections::HashSet::new();
            for en in &m.elem_node {
                assert!(seen.insert(en[c]), "node {} repeats at corner {c}", en[c]);
            }
        }
    }

    #[test]
    fn interior_node_touches_eight_elements() {
        let m = Mesh::cube(3);
        let mut count = vec![0usize; m.nnode];
        for en in &m.elem_node {
            for &n in en {
                count[n as usize] += 1;
            }
        }
        // Corner nodes of the cube touch 1 element, interior nodes 8.
        assert_eq!(count.iter().filter(|&&c| c == 8).count(), 2 * 2 * 2);
        assert_eq!(count.iter().filter(|&&c| c == 1).count(), 8);
    }

    #[test]
    fn neighbors_are_mutual_and_bounded() {
        let m = Mesh::cube(4);
        for e in 0..m.nelem {
            let nb = m.elem_neighbors(e);
            for (dir, n) in nb.iter().enumerate() {
                if let Some(n) = n {
                    let back = m.elem_neighbors(*n as usize);
                    // The opposite direction must point back at e.
                    let opp = dir ^ 1;
                    assert_eq!(back[opp], Some(e as u32), "elem {e} dir {dir}");
                }
            }
        }
        // Corner element 0 has exactly 3 neighbors; interior has 6.
        assert_eq!(m.elem_neighbors(0).iter().flatten().count(), 3);
        let interior = (4 + 1) * 4 + 1; // (i=1, j=1, k=1)
        assert_eq!(m.elem_neighbors(interior).iter().flatten().count(), 6);
    }

    #[test]
    fn symmetry_planes() {
        let m = Mesh::cube(3);
        assert_eq!(m.symm_x().len(), 16);
        assert_eq!(m.symm_y().len(), 16);
        assert_eq!(m.symm_z().len(), 16);
    }

    #[test]
    fn coordinates_span_edge() {
        let m = Mesh::cube(2);
        let (x, y, z) = m.coordinates(1.125);
        assert_eq!(x.len(), m.nnode);
        let max = x.iter().cloned().fold(0.0, f64::max);
        assert!((max - 1.125).abs() < 1e-12);
        assert!((y.iter().cloned().fold(0.0, f64::max) - 1.125).abs() < 1e-12);
        assert!((z.iter().cloned().fold(0.0, f64::max) - 1.125).abs() < 1e-12);
    }
}
