//! Per-cycle time-series recording (the proxy's analogue of LULESH's
//! progress output), used by the examples and for post-hoc analysis of
//! benchmark runs.

use crate::domain::Domain;
use crate::forces::ForceAccum;
use crate::forces::ForceScheme;
use crate::hydro::{run_stats_of, step_with};
use crate::RunStats;
use ompsim::ThreadPool;
use std::io::Write;

/// One recorded cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    /// Cycle number (after the step).
    pub cycle: usize,
    /// Simulated time.
    pub time: f64,
    /// Time-step used.
    pub dt: f64,
    /// Total (internal + kinetic) energy.
    pub total_energy: f64,
    /// Specific internal energy of the origin element.
    pub origin_energy: f64,
    /// Maximum nodal speed.
    pub max_velocity: f64,
}

/// A recorded run.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// One entry per executed cycle.
    pub cycles: Vec<CycleStats>,
}

impl History {
    /// Writes the series as CSV.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "cycle,time,dt,total_energy,origin_energy,max_velocity")?;
        for c in &self.cycles {
            writeln!(
                w,
                "{},{:e},{:e},{:e},{:e},{:e}",
                c.cycle, c.time, c.dt, c.total_energy, c.origin_energy, c.max_velocity
            )?;
        }
        Ok(())
    }
}

/// Like [`crate::run`], but records per-cycle statistics.
pub fn run_with_history(
    d: &mut Domain,
    pool: &ThreadPool,
    scheme: ForceScheme,
    cycles: usize,
) -> (RunStats, History) {
    let mut history = History::default();
    let mut accum = ForceAccum::new(scheme);
    let mut mem = 0usize;
    let mut applies = 0u64;
    let mut remote_applies = 0u64;
    for _ in 0..cycles {
        let dt_used = d.dt;
        let s = step_with(d, pool, &mut accum);
        mem = mem.max(s.memory_overhead);
        applies += s.applies;
        remote_applies += s.remote_applies;
        let max_velocity = (0..d.nnode())
            .map(|n| (d.xd[n] * d.xd[n] + d.yd[n] * d.yd[n] + d.zd[n] * d.zd[n]).sqrt())
            .fold(0.0f64, f64::max);
        history.cycles.push(CycleStats {
            cycle: d.cycle,
            time: d.time,
            dt: dt_used,
            total_energy: d.total_energy(),
            origin_energy: d.e[0],
            max_velocity,
        });
    }
    let mut stats = run_stats_of(d, mem);
    stats.applies = applies;
    stats.remote_applies = remote_applies;
    (stats, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Params;

    #[test]
    fn history_records_every_cycle_monotonically() {
        let mut d = Domain::new(4, Params::default());
        let pool = ThreadPool::new(2);
        let (stats, h) = run_with_history(&mut d, &pool, ForceScheme::Seq, 12);
        assert_eq!(stats.cycles, 12);
        assert_eq!(h.cycles.len(), 12);
        for w in h.cycles.windows(2) {
            assert_eq!(w[1].cycle, w[0].cycle + 1);
            assert!(w[1].time > w[0].time);
            assert!(w[1].dt > 0.0);
        }
        // Blast decays the origin element's energy monotonically.
        assert!(h.cycles.last().unwrap().origin_energy < h.cycles[0].origin_energy);
    }

    #[test]
    fn csv_output_shape() {
        let mut d = Domain::new(3, Params::default());
        let pool = ThreadPool::new(1);
        let (_, h) = run_with_history(&mut d, &pool, ForceScheme::Seq, 3);
        let mut buf = Vec::new();
        h.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 cycles
        assert!(lines[0].starts_with("cycle,"));
        assert_eq!(lines[1].split(',').count(), 6);
    }
}
