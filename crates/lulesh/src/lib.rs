//! # spray-lulesh — a miniature LULESH-like shock-hydrodynamics proxy
//!
//! The paper's third test case (§VI-C) is LULESH 2.0, whose
//! `IntegrateStressForElems` and `CalcFBHourglassForceForElems` sweeps
//! scatter per-element corner forces to shared nodal arrays — a sparse
//! reduction with data-dependent indices. LULESH ships a domain-specific
//! parallelization that replicates the output array 8× and adds a
//! combination sweep; the paper deletes that machinery and drops in SPRAY
//! reducers instead, then compares run time and memory.
//!
//! This crate is a from-scratch miniature reproduction of that setting
//! (full LULESH physics is simplified to a gamma-law EOS and a
//! von Neumann–Richtmyer viscosity — see DESIGN.md substitution 4):
//!
//! * a structured hexahedral mesh with element→node indirection
//!   ([`Mesh`]),
//! * the Sedov-like blast problem state ([`Domain`], [`Params`]),
//! * LULESH's hex geometry kernels ([`elem_volume`], [`node_normals`],
//!   [`char_length`]),
//! * both force sweeps with selectable accumulation ([`ForceScheme`]:
//!   sequential, any spray [`spray::Strategy`], or the 8-copy
//!   domain-specific baseline),
//! * a Lagrangian leapfrog integrator ([`step`], [`run`]).
//!
//! ```
//! use spray_lulesh::{Domain, ForceScheme, Params, run};
//! use spray::Strategy;
//! use ompsim::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! let mut d = Domain::new(4, Params::default());
//! let stats = run(&mut d, &pool,
//!     ForceScheme::Spray(Strategy::BlockLock { block_size: 512 }), 5);
//! assert_eq!(stats.cycles, 5);
//! assert!(stats.max_velocity > 0.0);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod domain;
mod forces;
mod hex;
mod history;
mod hydro;
mod mesh;
mod qmono;
mod vtk;

pub use checkpoint::{read_checkpoint, write_checkpoint, CheckpointError};
pub use domain::{Domain, Params, QMode};
pub use forces::{
    calc_force_for_nodes, calc_force_for_nodes_service, calc_force_for_nodes_with, ForceAccum,
    ForceScheme, ForceStats, ParseForceSchemeError,
};
pub use hex::{char_length, elem_volume, node_normals, GAMMA};
pub use history::{run_with_history, CycleStats, History};
pub use hydro::{run, step, step_with, RunStats};
pub use mesh::Mesh;
pub use vtk::write_vtk;
