//! Simulation state (the LULESH `Domain`).

use crate::hex::elem_volume;
use crate::mesh::Mesh;

/// Which artificial-viscosity formulation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QMode {
    /// Plain von Neumann–Richtmyer (compression-proportional).
    Vnr,
    /// LULESH's neighbor-limited monotonic Q (default).
    #[default]
    Monotonic,
}

/// Material / control constants of the simulation.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Gamma-law EOS exponent (substitute for LULESH's tabular-ish EOS;
    /// see DESIGN.md substitution 4).
    pub gamma: f64,
    /// Initial density.
    pub rho0: f64,
    /// Hourglass control coefficient (LULESH default 3.0).
    pub hgcoef: f64,
    /// Linear artificial-viscosity coefficient.
    pub qlc: f64,
    /// Quadratic artificial-viscosity coefficient.
    pub qqc: f64,
    /// Artificial-viscosity formulation.
    pub q_mode: QMode,
    /// Maximum slope-limiter value of the monotonic Q (LULESH
    /// `monoq_max_slope`).
    pub monoq_max_slope: f64,
    /// Courant safety factor.
    pub cfl: f64,
    /// Maximum relative volume change per step (hydro constraint).
    pub dvovmax: f64,
    /// Maximum dt growth factor between steps.
    pub dtmax_growth: f64,
    /// Pressure floor.
    pub pmin: f64,
    /// Energy floor.
    pub emin: f64,
    /// Initial total energy deposited in element 0 (Sedov-like blast).
    pub e0: f64,
    /// Physical edge length of the cube.
    pub edge: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            gamma: 1.4,
            rho0: 1.0,
            hgcoef: 3.0,
            qlc: 0.5,
            qqc: 2.0,
            q_mode: QMode::Monotonic,
            monoq_max_slope: 1.0,
            cfl: 0.3,
            dvovmax: 0.1,
            dtmax_growth: 1.1,
            pmin: 0.0,
            emin: 0.0,
            e0: 3.948746e7,
            edge: 1.125,
        }
    }
}

/// All mesh-attached state of the simulation.
pub struct Domain {
    /// Mesh connectivity.
    pub mesh: Mesh,
    /// Physics constants.
    pub params: Params,

    // --- nodal quantities ---
    /// Node coordinates.
    pub x: Vec<f64>,
    /// Node coordinates.
    pub y: Vec<f64>,
    /// Node coordinates.
    pub z: Vec<f64>,
    /// Node velocities.
    pub xd: Vec<f64>,
    /// Node velocities.
    pub yd: Vec<f64>,
    /// Node velocities.
    pub zd: Vec<f64>,
    /// Nodal forces, interleaved `[fx0, fy0, fz0, fx1, …]` — a single 1-D
    /// array because SPRAY reduces 1-D arrays (paper limitation §II).
    pub f: Vec<f64>,
    /// Nodal mass (constant).
    pub nodal_mass: Vec<f64>,

    // --- element quantities ---
    /// Specific internal energy.
    pub e: Vec<f64>,
    /// Pressure.
    pub p: Vec<f64>,
    /// Artificial viscosity.
    pub q: Vec<f64>,
    /// Relative volume (current / reference).
    pub v: Vec<f64>,
    /// Reference volume.
    pub volo: Vec<f64>,
    /// Volume-change rate `(dV/dt)/V`.
    pub vdov: Vec<f64>,
    /// Monotonic-Q scratch: velocity gradient along ξ.
    pub delv_xi: Vec<f64>,
    /// Monotonic-Q scratch: velocity gradient along η.
    pub delv_eta: Vec<f64>,
    /// Monotonic-Q scratch: velocity gradient along ζ.
    pub delv_zeta: Vec<f64>,
    /// Monotonic-Q scratch: characteristic width along ξ.
    pub delx_xi: Vec<f64>,
    /// Monotonic-Q scratch: characteristic width along η.
    pub delx_eta: Vec<f64>,
    /// Monotonic-Q scratch: characteristic width along ζ.
    pub delx_zeta: Vec<f64>,
    /// Sound speed.
    pub ss: Vec<f64>,
    /// Element mass (constant).
    pub elem_mass: Vec<f64>,
    /// Characteristic length.
    pub arealg: Vec<f64>,

    // --- materials (LULESH 2.0 regions) ---
    /// Region (material) index of every element.
    pub region: Vec<u8>,
    /// Gamma-law exponent per region (`region_gamma[region[e]]`).
    pub region_gamma: Vec<f64>,

    // --- boundary conditions ---
    /// Nodes on the `x = 0` symmetry plane.
    pub symm_x: Vec<u32>,
    /// Nodes on the `y = 0` symmetry plane.
    pub symm_y: Vec<u32>,
    /// Nodes on the `z = 0` symmetry plane.
    pub symm_z: Vec<u32>,

    // --- time stepping ---
    /// Simulated time.
    pub time: f64,
    /// Current time step.
    pub dt: f64,
    /// Completed cycles.
    pub cycle: usize,
}

impl Domain {
    /// Builds the Sedov-like blast problem on an `nx³` cube: uniform
    /// density, all energy deposited in the corner element at the origin,
    /// symmetry planes on the three coordinate planes (LULESH's setup).
    pub fn new(nx: usize, params: Params) -> Self {
        let mesh = Mesh::cube(nx);
        let (x, y, z) = mesh.coordinates(params.edge);
        let nelem = mesh.nelem;
        let nnode = mesh.nnode;

        let mut volo = vec![0.0; nelem];
        let mut elem_mass = vec![0.0; nelem];
        let mut nodal_mass = vec![0.0; nnode];
        for e in 0..nelem {
            let (ex, ey, ez) = gather(&mesh, &x, &y, &z, e);
            let vol = elem_volume(&ex, &ey, &ez);
            assert!(vol > 0.0, "inverted element {e} at initialization");
            volo[e] = vol;
            elem_mass[e] = params.rho0 * vol;
            for &n in &mesh.elem_node[e] {
                nodal_mass[n as usize] += params.rho0 * vol / 8.0;
            }
        }

        let mut energy = vec![params.emin; nelem];
        // Sedov: all energy in the origin element (element 0), expressed as
        // specific energy.
        energy[0] = params.e0 / elem_mass[0];

        let symm_x = mesh.symm_x();
        let symm_y = mesh.symm_y();
        let symm_z = mesh.symm_z();

        let mut d = Domain {
            x,
            y,
            z,
            xd: vec![0.0; nnode],
            yd: vec![0.0; nnode],
            zd: vec![0.0; nnode],
            f: vec![0.0; 3 * nnode],
            nodal_mass,
            e: energy,
            p: vec![0.0; nelem],
            q: vec![0.0; nelem],
            v: vec![1.0; nelem],
            volo,
            vdov: vec![0.0; nelem],
            delv_xi: vec![0.0; nelem],
            delv_eta: vec![0.0; nelem],
            delv_zeta: vec![0.0; nelem],
            delx_xi: vec![0.0; nelem],
            delx_eta: vec![0.0; nelem],
            delx_zeta: vec![0.0; nelem],
            ss: vec![0.0; nelem],
            elem_mass,
            arealg: vec![0.0; nelem],
            region: vec![0; nelem],
            region_gamma: vec![params.gamma],
            symm_x,
            symm_y,
            symm_z,
            time: 0.0,
            dt: 0.0,
            cycle: 0,
            mesh,
            params,
        };
        d.update_eos_all();
        d.dt = d.suggested_dt();
        d
    }

    /// Number of elements.
    pub fn nelem(&self) -> usize {
        self.mesh.nelem
    }

    /// Number of nodes.
    pub fn nnode(&self) -> usize {
        self.mesh.nnode
    }

    /// Gathers one element's corner coordinates.
    pub fn elem_coords(&self, e: usize) -> ([f64; 8], [f64; 8], [f64; 8]) {
        gather(&self.mesh, &self.x, &self.y, &self.z, e)
    }

    /// Gathers one element's corner velocities.
    pub fn elem_velocities(&self, e: usize) -> ([f64; 8], [f64; 8], [f64; 8]) {
        gather(&self.mesh, &self.xd, &self.yd, &self.zd, e)
    }

    /// Current density of element `e`.
    pub fn rho(&self, e: usize) -> f64 {
        self.elem_mass[e] / (self.volo[e] * self.v[e])
    }

    /// Gamma-law exponent of element `e`'s material.
    #[inline]
    pub fn gamma(&self, e: usize) -> f64 {
        self.region_gamma[self.region[e] as usize]
    }

    /// Assigns materials: `assign(e)` gives each element's region index
    /// into `gammas` (LULESH 2.0's multi-region support; regions differ
    /// here by their EOS exponent). Refreshes pressure and sound speed.
    ///
    /// # Panics
    /// Panics if `gammas` is empty or `assign` returns an out-of-range
    /// region.
    pub fn set_regions(&mut self, assign: impl Fn(usize) -> u8, gammas: Vec<f64>) {
        assert!(!gammas.is_empty(), "need at least one region");
        for e in 0..self.nelem() {
            let r = assign(e);
            assert!(
                (r as usize) < gammas.len(),
                "element {e} assigned to region {r} of {}",
                gammas.len()
            );
            self.region[e] = r;
        }
        self.region_gamma = gammas;
        self.update_eos_all();
    }

    /// Recomputes pressure and sound speed of every element from the
    /// gamma-law EOS (`p = (γ-1) ρ e`, `ss = sqrt(γ p / ρ)`).
    pub fn update_eos_all(&mut self) {
        for e in 0..self.nelem() {
            self.update_eos(e);
        }
    }

    /// EOS update of a single element.
    pub fn update_eos(&mut self, e: usize) {
        let gamma = self.gamma(e);
        let rho = self.rho(e);
        self.e[e] = self.e[e].max(self.params.emin);
        let p = ((gamma - 1.0) * rho * self.e[e]).max(self.params.pmin);
        self.p[e] = p;
        self.ss[e] = (gamma * p / rho).max(1e-20).sqrt();
    }

    /// Courant + hydro time-step constraint over all elements.
    pub fn suggested_dt(&self) -> f64 {
        (0..self.nelem())
            .map(|e| self.dt_constraint(e))
            .fold(f64::INFINITY, f64::min)
    }

    /// Parallel variant of [`Domain::suggested_dt`] using a team
    /// min-reduction (LULESH's `CalcTimeConstraintsForElems` is likewise a
    /// parallel min).
    pub fn suggested_dt_par(&self, pool: &ompsim::ThreadPool) -> f64 {
        pool.min_f64(0..self.nelem(), |e| self.dt_constraint(e))
    }

    /// The time-step constraint contributed by element `e`.
    fn dt_constraint(&self, e: usize) -> f64 {
        let len = if self.arealg[e] > 0.0 {
            self.arealg[e]
        } else {
            (self.volo[e] * self.v[e]).cbrt()
        };
        let mut denom = self.ss[e];
        if self.vdov[e] < 0.0 {
            // Compressing: include the viscosity signal speed.
            denom += 2.0 * self.params.qqc * len * self.vdov[e].abs();
        }
        let mut dt = f64::INFINITY;
        if denom > 0.0 {
            dt = dt.min(self.params.cfl * len / denom);
        }
        if self.vdov[e] != 0.0 {
            dt = dt.min(self.params.dvovmax / self.vdov[e].abs());
        }
        dt
    }

    /// Total energy: internal plus kinetic (used by conservation tests).
    pub fn total_energy(&self) -> f64 {
        let internal: f64 = (0..self.nelem())
            .map(|e| self.elem_mass[e] * self.e[e])
            .sum();
        let kinetic: f64 = (0..self.nnode())
            .map(|n| {
                0.5 * self.nodal_mass[n]
                    * (self.xd[n] * self.xd[n] + self.yd[n] * self.yd[n] + self.zd[n] * self.zd[n])
            })
            .sum();
        internal + kinetic
    }
}

fn gather(
    mesh: &Mesh,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    e: usize,
) -> ([f64; 8], [f64; 8], [f64; 8]) {
    let en = &mesh.elem_node[e];
    (
        std::array::from_fn(|k| x[en[k] as usize]),
        std::array::from_fn(|k| y[en[k] as usize]),
        std::array::from_fn(|k| z[en[k] as usize]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialization_masses() {
        let d = Domain::new(4, Params::default());
        let total_mass: f64 = d.elem_mass.iter().sum();
        let expected = d.params.rho0 * d.params.edge.powi(3);
        assert!((total_mass - expected).abs() < 1e-9 * expected);
        let nodal_total: f64 = d.nodal_mass.iter().sum();
        assert!((nodal_total - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn sedov_energy_in_origin_element() {
        let d = Domain::new(3, Params::default());
        assert!(d.e[0] > 0.0);
        assert!(d.e[1..].iter().all(|&e| e == d.params.emin));
        assert!(d.p[0] > 0.0);
    }

    #[test]
    fn initial_dt_positive_and_finite() {
        let d = Domain::new(3, Params::default());
        assert!(d.dt.is_finite() && d.dt > 0.0);
    }

    #[test]
    fn eos_consistency() {
        let mut d = Domain::new(2, Params::default());
        d.e[3] = 5.0;
        d.update_eos(3);
        let rho = d.rho(3);
        assert!((d.p[3] - 0.4 * rho * 5.0).abs() < 1e-12);
        assert!((d.ss[3] - (1.4 * d.p[3] / rho).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn total_energy_initial() {
        let d = Domain::new(3, Params::default());
        let e = d.total_energy();
        assert!((e - d.params.e0).abs() < 1e-6 * d.params.e0);
    }
}
