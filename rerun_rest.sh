#!/bin/sh
set -x
cargo run -q --release -p bench --bin ablation_atomics   -- --threads 1,4 --reps 2 --n 20000000 > results/ablation_atomics.csv 2>/dev/null
cargo run -q --release -p bench --bin ablation_keeper    -- --threads 1,4 --reps 2 > results/ablation_keeper.csv 2>/dev/null
cargo run -q --release -p bench --bin ablation_schedule  -- --threads 4 --reps 2 > results/ablation_schedule.csv 2>/dev/null
cargo run -q --release -p bench --bin ablation_autotune  -- --threads 4 > results/ablation_autotune.csv 2>/dev/null
OPT_PROFILE=opt1 cargo run -q --profile opt1 -p bench --bin fig12_optlevels -- --threads 1,4 --reps 3 > results/fig12_opt1.csv 2>/dev/null
OPT_PROFILE=opt2 cargo run -q --profile opt2 -p bench --bin fig12_optlevels -- --threads 1,4 --reps 3 > results/fig12_opt2.csv 2>/dev/null
OPT_PROFILE=opt3-release cargo run -q --release -p bench --bin fig12_optlevels -- --threads 1,4 --reps 3 > results/fig12_opt3.csv 2>/dev/null
echo RERUN_DONE
